package consistency

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"faust/internal/history"
)

const searchCap = 10

func TestCheckSequentialAcceptsLegalRuns(t *testing.T) {
	h := history.NewBuilder(2).
		Write(0, "a").
		Read(1, 0, "a").
		Write(1, "b").
		Read(0, 1, "b").
		Read(0, 0, "a").
		History()
	if res := CheckSequential(h.Ops); !res.OK {
		t.Fatalf("legal sequential run rejected: %s", res.Reason)
	}
}

func TestCheckSequentialRejectsWrongValue(t *testing.T) {
	h := history.NewBuilder(2).Write(0, "a").Read(1, 0, "stale").History()
	if res := CheckSequential(h.Ops); res.OK {
		t.Fatal("read of wrong value accepted")
	}
}

func TestCheckSequentialRejectsBottomAfterWrite(t *testing.T) {
	h := history.NewBuilder(2).Write(0, "a").Read(1, 0, "").History()
	if res := CheckSequential(h.Ops); res.OK {
		t.Fatal("bottom read after write accepted")
	}
}

func TestCheckSequentialRejectsSWMRViolation(t *testing.T) {
	ops := []history.Op{
		{ID: 0, Client: 0, Kind: history.OpWrite, Reg: 1, Value: []byte("x"), Inv: 1, Resp: 2},
	}
	if res := CheckSequential(ops); res.OK {
		t.Fatal("write to foreign register accepted")
	}
}

func TestLinearizableSequentialHistory(t *testing.T) {
	h := history.NewBuilder(3).
		Write(0, "a").
		Read(1, 0, "a").
		Write(1, "b").
		Read(2, 1, "b").
		Read(2, 0, "a").
		History()
	if res := CheckLinearizable(h); !res.OK {
		t.Fatalf("linearizable history rejected: %s", res.Reason)
	}
}

func TestLinearizableConcurrentReadMayReturnEither(t *testing.T) {
	// A read concurrent with a write may return old or new value.
	old := history.NewBuilder(2).
		Write(0, "v1").
		Concurrent(
			history.OpSpec{Client: 0, Kind: history.OpWrite, Reg: 0, Value: "v2"},
			history.OpSpec{Client: 1, Kind: history.OpRead, Reg: 0, Value: "v1"},
		).History()
	if res := CheckLinearizable(old); !res.OK {
		t.Fatalf("concurrent read of old value rejected: %s", res.Reason)
	}
	newer := history.NewBuilder(2).
		Write(0, "v1").
		Concurrent(
			history.OpSpec{Client: 0, Kind: history.OpWrite, Reg: 0, Value: "v2"},
			history.OpSpec{Client: 1, Kind: history.OpRead, Reg: 0, Value: "v2"},
		).History()
	if res := CheckLinearizable(newer); !res.OK {
		t.Fatalf("concurrent read of new value rejected: %s", res.Reason)
	}
}

func TestLinearizableRejectsStaleRead(t *testing.T) {
	h := history.NewBuilder(2).
		Write(0, "v1").
		Write(0, "v2").
		Read(1, 0, "v1"). // v2 completed before this read began
		History()
	res := CheckLinearizable(h)
	if res.OK {
		t.Fatal("stale read accepted")
	}
	if !strings.Contains(res.Reason, "stale") {
		t.Fatalf("unexpected reason: %s", res.Reason)
	}
}

func TestLinearizableRejectsBottomAfterCompletedWrite(t *testing.T) {
	h := history.NewBuilder(2).Write(0, "v").Read(1, 0, "").History()
	if res := CheckLinearizable(h); res.OK {
		t.Fatal("bottom read after completed write accepted")
	}
}

func TestLinearizableRejectsFutureRead(t *testing.T) {
	h := history.NewBuilder(2).
		Read(1, 0, "v"). // reads a value written only later
		Write(0, "v").
		History()
	res := CheckLinearizable(h)
	if res.OK {
		t.Fatal("future read accepted")
	}
	if !strings.Contains(res.Reason, "future") {
		t.Fatalf("unexpected reason: %s", res.Reason)
	}
}

func TestLinearizableRejectsNewOldInversion(t *testing.T) {
	h := history.NewBuilder(3).
		Write(0, "v1").
		Concurrent(
			history.OpSpec{Client: 0, Kind: history.OpWrite, Reg: 0, Value: "v2"},
			history.OpSpec{Client: 1, Kind: history.OpRead, Reg: 0, Value: "v2"},
		).
		Read(2, 0, "v1"). // after a read that already saw v2
		History()
	res := CheckLinearizable(h)
	if res.OK {
		t.Fatal("new-old inversion accepted")
	}
}

func TestLinearizablePendingWriteMayBeRead(t *testing.T) {
	h := history.NewBuilder(2).
		PendingWrite(0, "ghost").
		Read(1, 0, "ghost").
		History()
	if res := CheckLinearizable(h); !res.OK {
		t.Fatalf("read of pending write rejected: %s", res.Reason)
	}
	if res := CheckLinearizableExhaustive(h, searchCap); !res.OK {
		t.Fatalf("exhaustive: read of pending write rejected: %s", res.Reason)
	}
}

func TestLinearizablePendingWriteMayBeInvisible(t *testing.T) {
	h := history.NewBuilder(2).
		PendingWrite(0, "ghost").
		Read(1, 0, "").
		History()
	if res := CheckLinearizable(h); !res.OK {
		t.Fatalf("invisible pending write rejected: %s", res.Reason)
	}
}

func TestLinearizableRejectsUnwrittenValue(t *testing.T) {
	h := history.NewBuilder(2).Read(1, 0, "martian").History()
	if res := CheckLinearizable(h); res.OK {
		t.Fatal("read of never-written value accepted")
	}
}

func TestWaitFree(t *testing.T) {
	h := history.NewBuilder(2).Write(0, "a").PendingWrite(1, "b").History()
	all := func(int) bool { return true }
	if res := CheckWaitFree(h, all); res.OK {
		t.Fatal("pending op of correct client accepted")
	}
	crashed := func(c int) bool { return c != 1 }
	if res := CheckWaitFree(h, crashed); !res.OK {
		t.Fatalf("pending op of crashed client rejected: %s", res.Reason)
	}
}

// figure3 builds the history of Figure 3: write1(X1,u) completes, then
// client 2 reads bottom, then reads u. (0-based: clients 0 and 1.)
func figure3() history.History {
	return history.NewBuilder(2).
		Write(0, "u").
		Read(1, 0, "").
		Read(1, 0, "u").
		History()
}

func TestFigure3NotLinearizable(t *testing.T) {
	if res := CheckLinearizable(figure3()); res.OK {
		t.Fatal("Figure 3 history must not be linearizable")
	}
	if res := CheckLinearizableExhaustive(figure3(), searchCap); res.OK {
		t.Fatal("Figure 3 history must not be linearizable (exhaustive)")
	}
}

func TestFigure3WeakButNotForkLinearizable(t *testing.T) {
	h := figure3()
	if res := CheckWeakForkLinearizable(h, searchCap); !res.OK {
		t.Fatalf("Figure 3 must be weak fork-linearizable: %s", res.Reason)
	}
	if res := CheckForkLinearizable(h, searchCap); res.OK {
		t.Fatal("Figure 3 must NOT be fork-linearizable")
	}
}

func TestFigure3NotForkStar(t *testing.T) {
	// Fork-* keeps the full real-time order, so the bottom read after the
	// completed write cannot be placed: one direction of the paper's
	// incomparability claim (Section 4).
	if res := CheckForkStarLinearizable(figure3(), searchCap); res.OK {
		t.Fatal("Figure 3 must NOT be fork-*-linearizable")
	}
}

func TestFigure3CausallyConsistent(t *testing.T) {
	if res := CheckCausal(figure3()); !res.OK {
		t.Fatalf("Figure 3 must be causally consistent: %s", res.Reason)
	}
}

// forkStarButNotWeak is the other direction of the incomparability claim:
// a history that is fork-*-linearizable but violates causal consistency
// (and hence weak fork-linearizability).
//
//	C0: write0(X0,u)
//	C1: read1(X0)->u ; write1(X1,v)
//	C2: read2(X1)->v ; read2(X0)->bottom   (!! causally after write0)
func forkStarButNotWeak() history.History {
	return history.NewBuilder(3).
		Write(0, "u").
		Read(1, 0, "u").
		Write(1, "v").
		Read(2, 1, "v").
		Read(2, 0, "").
		History()
}

func TestForkStarButNotWeakForkLinearizable(t *testing.T) {
	h := forkStarButNotWeak()
	if res := CheckForkStarLinearizable(h, searchCap); !res.OK {
		t.Fatalf("history must be fork-*-linearizable: %s", res.Reason)
	}
	if res := CheckWeakForkLinearizable(h, searchCap); res.OK {
		t.Fatal("history must NOT be weak fork-linearizable (causality violated)")
	}
	if res := CheckCausal(h); res.OK {
		t.Fatal("history must NOT be causally consistent")
	}
}

func TestForkedHistoryIsForkLinearizable(t *testing.T) {
	// The server hides C0's second write from C1 forever: a plain fork.
	// Forking semantics allow it (the reader's view simply omits the
	// write); linearizability does not.
	h := history.NewBuilder(2).
		Write(0, "v1").
		Write(0, "v2").
		Read(1, 0, "v1").
		History()
	if res := CheckForkLinearizable(h, searchCap); !res.OK {
		t.Fatalf("fork must be fork-linearizable: %s", res.Reason)
	}
	if res := CheckWeakForkLinearizable(h, searchCap); !res.OK {
		t.Fatalf("fork must be weak fork-linearizable: %s", res.Reason)
	}
	if res := CheckLinearizable(h); res.OK {
		t.Fatal("fork must not be linearizable")
	}
}

func TestDoubleJoinViolatesWeakForkLinearizability(t *testing.T) {
	// The server hides write0(a) from C1 (bottom read), then later shows
	// C1 the newer write0(b). The hidden-then-shown pattern re-joins the
	// views in a non-last operation, which weak fork-linearizability
	// forbids (and USTOR detects).
	h := history.NewBuilder(2).
		Write(0, "a").
		Read(1, 0, ""). // misses a
		Write(0, "b").
		Read(1, 0, "b"). // but sees b
		History()
	if res := CheckWeakForkLinearizable(h, searchCap); res.OK {
		t.Fatal("hidden-then-shown history must violate weak fork-linearizability")
	}
	if res := CheckForkLinearizable(h, searchCap); res.OK {
		t.Fatal("hidden-then-shown history must violate fork-linearizability")
	}
}

func TestLinearizableImpliesAllForkNotions(t *testing.T) {
	h := history.NewBuilder(2).
		Write(0, "a").
		Read(1, 0, "a").
		Write(1, "b").
		Read(0, 1, "b").
		History()
	if res := CheckLinearizable(h); !res.OK {
		t.Fatalf("sanity: %s", res.Reason)
	}
	if res := CheckForkLinearizable(h, searchCap); !res.OK {
		t.Fatalf("linearizable but not fork-linearizable: %s", res.Reason)
	}
	if res := CheckForkStarLinearizable(h, searchCap); !res.OK {
		t.Fatalf("linearizable but not fork-*: %s", res.Reason)
	}
	if res := CheckWeakForkLinearizable(h, searchCap); !res.OK {
		t.Fatalf("linearizable but not weak fork-linearizable: %s", res.Reason)
	}
	if res := CheckCausal(h); !res.OK {
		t.Fatalf("linearizable but not causal: %s", res.Reason)
	}
}

func TestCausalAllowsDisjointOrders(t *testing.T) {
	// Two clients observe two concurrent writes in different orders:
	// causally fine, not linearizable. (Writes are causally concurrent.)
	h := history.NewBuilder(4).
		Concurrent(
			history.OpSpec{Client: 0, Kind: history.OpWrite, Reg: 0, Value: "x"},
			history.OpSpec{Client: 1, Kind: history.OpWrite, Reg: 1, Value: "y"},
		).
		Concurrent(
			history.OpSpec{Client: 2, Kind: history.OpRead, Reg: 0, Value: "x"},
			history.OpSpec{Client: 3, Kind: history.OpRead, Reg: 1, Value: "y"},
		).
		Concurrent(
			history.OpSpec{Client: 2, Kind: history.OpRead, Reg: 1, Value: ""},
			history.OpSpec{Client: 3, Kind: history.OpRead, Reg: 0, Value: ""},
		).
		History()
	if res := CheckCausal(h); !res.OK {
		t.Fatalf("causally consistent history rejected: %s", res.Reason)
	}
}

func TestCausalRejectsMissedCausalWrite(t *testing.T) {
	// C1 reads u (so write0 -> its next ops), writes v; C2 sees v but not
	// u: causality violated.
	if res := CheckCausal(forkStarButNotWeak()); res.OK {
		t.Fatal("causality violation accepted")
	}
}

func TestCausalRejectsReadCycle(t *testing.T) {
	// Read before (program order) the write it reads from => cycle.
	ops := []history.Op{
		{ID: 0, Client: 0, Kind: history.OpRead, Reg: 1, Value: []byte("v"), Inv: 1, Resp: 2},
		{ID: 1, Client: 1, Kind: history.OpRead, Reg: 0, Value: []byte("u"), Inv: 1, Resp: 2},
		{ID: 2, Client: 0, Kind: history.OpWrite, Reg: 0, Value: []byte("u"), Inv: 3, Resp: 4},
		{ID: 3, Client: 1, Kind: history.OpWrite, Reg: 1, Value: []byte("v"), Inv: 3, Resp: 4},
	}
	h := history.History{N: 2, Ops: ops}
	if res := CheckCausal(h); res.OK {
		t.Fatal("causal cycle accepted")
	}
}

func TestCausalMonotoneReadsViolation(t *testing.T) {
	// One client reads v2 then v1 (going backwards): per-client
	// monotonicity is implied by causality and must be rejected.
	h := history.NewBuilder(2).
		Write(0, "v1").
		Write(0, "v2").
		Read(1, 0, "v2").
		Read(1, 0, "v1").
		History()
	if res := CheckCausal(h); res.OK {
		t.Fatal("backwards reads accepted by causal checker")
	}
}

func TestCausalStaleReadAllowed(t *testing.T) {
	// Reading a stale (but causally permitted) value is fine for causal
	// consistency even though linearizability rejects it.
	h := history.NewBuilder(2).
		Write(0, "v1").
		Write(0, "v2").
		Read(1, 0, "v1").
		History()
	if res := CheckCausal(h); !res.OK {
		t.Fatalf("stale read rejected by causal checker: %s", res.Reason)
	}
	if res := CheckCausalExhaustive(h, searchCap); !res.OK {
		t.Fatalf("stale read rejected by exhaustive causal checker: %s", res.Reason)
	}
}

// randomHistory generates a small pseudo-random history over n clients.
// Written values are unique; read values are sampled among written values
// (possibly of the wrong register era) or bottom, so both legal and
// illegal histories appear.
func randomHistory(rng *rand.Rand, n, ops int) history.History {
	b := history.NewBuilder(n)
	var written []string
	seq := 0
	for len(b.History().Ops) < ops {
		c := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			seq++
			v := fmt.Sprintf("v%d", seq)
			written = append(written, v)
			b.Write(c, v)
		case 1:
			reg := rng.Intn(n)
			val := ""
			if len(written) > 0 && rng.Intn(3) > 0 {
				val = written[rng.Intn(len(written))]
			}
			b.Read(c, reg, val)
		default:
			seq++
			v := fmt.Sprintf("v%d", seq)
			written = append(written, v)
			reg := rng.Intn(n)
			val := ""
			if len(written) > 1 && rng.Intn(2) == 0 {
				val = written[rng.Intn(len(written)-1)]
			}
			b.Concurrent(
				history.OpSpec{Client: c, Kind: history.OpWrite, Reg: c, Value: v},
				history.OpSpec{Client: (c + 1) % n, Kind: history.OpRead, Reg: reg, Value: val},
			)
		}
	}
	return b.History()
}

// fixReadValues rewrites read values so they refer to writes of the right
// register where possible; histories remain adversarial but type-correct.
func plausible(h history.History) bool {
	_, err := readsFrom(h)
	return err == nil
}

// Property: the fast linearizability checker agrees with the exhaustive
// one on random small histories.
func TestQuickLinearizableFastMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	checked := 0
	for iter := 0; iter < 400; iter++ {
		h := randomHistory(rng, 2, 5)
		if !plausible(h) {
			continue
		}
		checked++
		fast := CheckLinearizable(h)
		slow := CheckLinearizableExhaustive(h, 12)
		if fast.OK != slow.OK {
			t.Fatalf("checkers disagree (fast=%v slow=%v) on:\n%s\nfast: %s\nslow: %s",
				fast.OK, slow.OK, h, fast.Reason, slow.Reason)
		}
	}
	if checked < 100 {
		t.Fatalf("too few plausible histories checked: %d", checked)
	}
}

// Property: the fast causal checker agrees with the exhaustive one.
func TestQuickCausalFastMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	checked := 0
	for iter := 0; iter < 300; iter++ {
		h := randomHistory(rng, 2, 5)
		if !plausible(h) {
			continue
		}
		checked++
		fast := CheckCausal(h)
		slow := CheckCausalExhaustive(h, 12)
		if fast.OK != slow.OK {
			t.Fatalf("causal checkers disagree (fast=%v slow=%v) on:\n%s\nfast: %s\nslow: %s",
				fast.OK, slow.OK, h, fast.Reason, slow.Reason)
		}
	}
	if checked < 80 {
		t.Fatalf("too few plausible histories checked: %d", checked)
	}
}

// Property: the hierarchy of notions holds on random histories:
// linearizable => fork-linearizable => weak fork-linearizable => causal.
func TestQuickNotionHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	checked := 0
	for iter := 0; iter < 200; iter++ {
		h := randomHistory(rng, 2, 5)
		if !plausible(h) {
			continue
		}
		checked++
		lin := CheckLinearizable(h).OK
		fork := CheckForkLinearizable(h, 12).OK
		weak := CheckWeakForkLinearizable(h, 12).OK
		causal := CheckCausal(h).OK
		if lin && !fork {
			t.Fatalf("linearizable but not fork-linearizable:\n%s", h)
		}
		if fork && !weak {
			t.Fatalf("fork-linearizable but not weak fork-linearizable:\n%s", h)
		}
		if weak && !causal {
			t.Fatalf("weak fork-linearizable but not causal:\n%s", h)
		}
	}
	if checked < 60 {
		t.Fatalf("too few plausible histories checked: %d", checked)
	}
}

func TestSearchCapsReported(t *testing.T) {
	// A history over the cap must yield a descriptive failure, not hang.
	b := history.NewBuilder(2)
	for i := 0; i < 30; i++ {
		b.Write(0, fmt.Sprintf("v%d", i))
	}
	h := b.History()
	if res := CheckWeakForkLinearizable(h, 10); res.OK || !strings.Contains(res.Reason, "too large") {
		t.Fatalf("cap not enforced: %+v", res)
	}
	if res := CheckLinearizableExhaustive(h, 10); res.OK || !strings.Contains(res.Reason, "too large") {
		t.Fatalf("cap not enforced: %+v", res)
	}
}

func TestEmptyHistoryConsistent(t *testing.T) {
	h := history.History{N: 2}
	if !CheckLinearizable(h).OK || !CheckCausal(h).OK {
		t.Fatal("empty history must be consistent")
	}
	if !CheckWeakForkLinearizable(h, searchCap).OK {
		t.Fatal("empty history must be weak fork-linearizable")
	}
}
