// Package ustor implements USTOR, the weak fork-linearizable untrusted
// storage protocol of Section 5 of the paper (Algorithms 1 and 2).
//
// USTOR emulates n single-writer multi-reader registers X_0..X_{n-1} on an
// untrusted server. When the server is correct the protocol is
// linearizable and wait-free; every operation takes a single round of
// message exchange (SUBMIT -> REPLY) plus an asynchronous COMMIT that only
// expedites garbage collection at the server. When the server is faulty,
// clients either detect an inconsistency (output fail and halt) or their
// views remain weak fork-linearizable — at which point the FAUST layer
// (package faustproto) guarantees eventual detection through offline
// client-to-client version exchange.
package ustor

import (
	"context"
	"fmt"
	"sync"

	"faust/internal/obs/trace"
	"faust/internal/version"
	"faust/internal/wire"
)

// Server is the correct USTOR server of Algorithm 2. It is a pure state
// machine driven by HandleSubmit / HandleCommit; package transport
// serializes the calls, matching the paper's atomic event handlers, but
// the server is additionally safe for concurrent handler calls. The
// server keeps no secrets and verifies nothing — all integrity guarantees
// come from the client-side checks.
//
// # Copy-on-write replies
//
// REPLY messages share memory with server state instead of deep-copying
// it. That is safe because the state is managed copy-on-write:
//
//   - L is append-only between commits. A reply takes a length-and-
//     capacity-capped view (l[:len:len]) of the current tuples; later
//     appends land beyond the view's capacity (or in a new backing array)
//     and existing entries are never mutated in place. A commit that
//     truncates L installs a freshly allocated slice, leaving every view
//     handed out earlier intact.
//   - P is an immutable array: a commit installs a new [][]byte with the
//     one entry replaced rather than writing through the old one.
//   - SVER entries and MEM entries are replaced wholesale; the versions
//     and signatures they reference come from received messages, which
//     are immutable once handed to the server.
//
// The one exception is MEM[j] in read replies: its value is handed to
// application code (which may retain or mutate the returned slice), so it
// is still deep-copied — outside the critical section.
//
// gen counts state mutations; tests use it to correlate snapshots.
type Server struct {
	mu sync.Mutex

	n    int
	mem  []wire.MemEntry      // MEM: last timestamp, value, DATA-signature per client
	c    int                  // client who committed the last operation in the schedule
	sver []wire.SignedVersion // SVER: last version and COMMIT-signature per client
	l    []wire.Invocation    // L: invocation tuples of concurrent (uncommitted) operations
	p    [][]byte             // P: PROOF-signatures per client
	gen  uint64               // state generation, bumped on every mutation
}

// compile-time interface check lives in transport tests; avoid the import
// cycle here by asserting locally against the method set.
var _ interface {
	HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply
	HandleCommit(ctx context.Context, from int, c *wire.Commit)
} = (*Server)(nil)

// NewServer creates a correct server for n clients. Initially every
// register holds bottom, every version is (0^n, bottom^n), and the "last
// committed" pointer c refers to client 0, whose initial version is zero —
// exactly the initial state of Algorithm 2.
func NewServer(n int) *Server {
	s := &Server{
		n:    n,
		mem:  make([]wire.MemEntry, n),
		sver: make([]wire.SignedVersion, n),
		p:    make([][]byte, n),
	}
	for i := 0; i < n; i++ {
		s.sver[i] = wire.ZeroSignedVersion(n)
	}
	return s
}

// N returns the number of clients.
func (s *Server) N() int { return s.n }

// HandleSubmit implements Algorithm 2 lines 107-116. It updates MEM,
// snapshots the pre-append state of L (so an operation's own tuple is
// never in its REPLY), appends the new invocation tuple, and assembles the
// REPLY from the copy-on-write snapshot outside the critical section —
// HandleSubmit holds the mutex only for a few pointer-sized writes and is
// O(1) allocation regardless of n. A piggybacked COMMIT (Section 5
// optimization) is processed first, exactly as if it had arrived as its
// own message.
func (s *Server) HandleSubmit(ctx context.Context, from int, m *wire.Submit) *wire.Reply {
	_, span := trace.Child(ctx, "apply")
	defer span.End()
	if m.Piggyback != nil {
		s.HandleCommit(ctx, from, m.Piggyback)
	}
	if from < 0 || from >= s.n {
		return nil
	}
	isRead := m.Inv.Op == wire.OpRead
	j := m.Inv.Reg
	if isRead && (j < 0 || j >= s.n) {
		return nil
	}

	var (
		c    int
		cver wire.SignedVersion
		jver wire.SignedVersion
		mem  wire.MemEntry
	)
	s.mu.Lock()
	if isRead {
		// Reads refresh the timestamp and DATA-signature but keep the
		// stored value (line 110).
		s.mem[from] = wire.MemEntry{T: m.T, Value: s.mem[from].Value, DataSig: m.DataSig}
		jver = s.sver[j]
		mem = s.mem[j]
	} else {
		s.mem[from] = wire.MemEntry{T: m.T, Value: m.Value, DataSig: m.DataSig}
	}
	c = s.c
	cver = s.sver[c]
	l := s.l[:len(s.l):len(s.l)] // COW view of the pre-append tuples
	p := s.p                     // immutable COW array
	s.l = append(s.l, m.Inv)
	s.gen++
	s.mu.Unlock()

	reply := &wire.Reply{
		IsRead: isRead,
		C:      c,
		CVer:   cver,
		L:      l,
		P:      p,
		// Advisory echo of the request's trace context (the submit
		// signature covers Inv.Trace; this copy just labels the REPLY).
		Trace: m.Inv.Trace,
	}
	if isRead {
		reply.JVer = jver
		// MEM[j]'s value escapes to application code; deep-copy it, but
		// outside the lock — the entry's byte slices are never mutated in
		// place, only replaced.
		reply.Mem = mem.Clone()
	}
	return reply
}

// HandleCommit implements Algorithm 2 lines 117-123. When the committed
// version exceeds the current maximum, the committer becomes the new
// schedule head and its tuple — plus all earlier tuples — leave L.
func (s *Server) HandleCommit(_ context.Context, from int, m *wire.Commit) {
	if from < 0 || from >= s.n {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vc := s.sver[s.c].Ver
	if version.VectorLess(vc.V, m.Ver.V) {
		s.c = from
		for idx := len(s.l) - 1; idx >= 0; idx-- {
			if s.l[idx].Client == from {
				// COW: install a fresh slice; views of the old L handed out
				// in earlier replies stay intact.
				s.l = append([]wire.Invocation(nil), s.l[idx+1:]...)
				break
			}
		}
	}
	// The message is immutable once received, so its version and signatures
	// can be adopted without cloning.
	s.sver[from] = wire.SignedVersion{Committer: from, Ver: m.Ver, Sig: m.CommitSig}
	// COW: replies alias P, so replace the array instead of writing through.
	newP := make([][]byte, s.n)
	copy(newP, s.p)
	newP[from] = m.ProofSig
	s.p = newP
	s.gen++
}

// ExportState serializes the server's complete state (MEM, c, SVER, L, P)
// with the canonical wire.ServerState encoding. Together with
// RestoreState it makes the server snapshottable: because the server is a
// deterministic state machine, restoring a snapshot and replaying the
// SUBMIT/COMMIT messages received afterwards reproduces the state exactly.
// Package store builds its WAL + snapshot persistence on this pair.
func (s *Server) ExportState() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.EncodeServerState(&wire.ServerState{
		N:    s.n,
		C:    s.c,
		Mem:  s.mem,
		Sver: s.sver,
		L:    s.l,
		P:    s.p,
	})
}

// RestoreState replaces the server's state with a previously exported one.
// The snapshot's dimension must match the server's n.
func (s *Server) RestoreState(data []byte) error {
	st, err := wire.DecodeServerState(data)
	if err != nil {
		return fmt.Errorf("ustor: decoding server state: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.N != s.n {
		return fmt.Errorf("ustor: snapshot is for %d clients, server has %d", st.N, s.n)
	}
	s.mem = st.Mem
	s.c = st.C
	s.sver = st.Sver
	s.l = st.L
	s.p = st.P
	s.gen++
	return nil
}

// Generation returns the state-mutation counter. Every HandleSubmit,
// HandleCommit and RestoreState bumps it; tests use it to correlate reply
// snapshots with server state.
func (s *Server) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// PendingOps returns the current length of L, i.e. the number of
// submitted-but-uncommitted operations the server tracks. Exposed for
// tests and the garbage-collection experiment.
func (s *Server) PendingOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.l)
}
