package wire

import (
	"bytes"
	"testing"
)

// TestBlobMessageRoundTrip encodes and decodes every blob-channel message
// shape, including nil-vs-empty byte strings, which the codec must keep
// distinct.
func TestBlobMessageRoundTrip(t *testing.T) {
	hash := bytes.Repeat([]byte{0xab}, 32)
	msgs := []Message{
		&BlobPut{ID: 7, Hash: hash, Data: []byte("chunk-bytes")},
		&BlobPut{Hash: hash, Data: []byte{}},
		&BlobAck{ID: 7, Hash: hash, OK: true},
		&BlobAck{ID: 1 << 31, Hash: hash, OK: false, Msg: "store: disk full"},
		&BlobGet{ID: 42, Hash: hash},
		&BlobData{ID: 42, Hash: hash, Found: true, Data: []byte("payload")},
		&BlobData{Hash: hash, Found: false},
	}
	for _, m := range msgs {
		enc := Encode(m)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if dec.MsgKind() != m.MsgKind() {
			t.Fatalf("kind mismatch: sent %v, got %v", m.MsgKind(), dec.MsgKind())
		}
		if !bytes.Equal(Encode(dec), enc) {
			t.Fatalf("%T did not round-trip canonically", m)
		}
	}

	// The request ID survives the round trip on every message kind.
	if g, _ := Decode(Encode(&BlobGet{ID: 99, Hash: hash})); g.(*BlobGet).ID != 99 {
		t.Fatalf("BlobGet ID lost: %+v", g)
	}
	if d, _ := Decode(Encode(&BlobData{ID: 99, Hash: hash, Found: true})); d.(*BlobData).ID != 99 {
		t.Fatalf("BlobData ID lost: %+v", d)
	}

	// nil vs empty Data must survive the round trip distinctly.
	withEmpty, _ := Decode(Encode(&BlobPut{Hash: hash, Data: []byte{}}))
	if d := withEmpty.(*BlobPut).Data; d == nil || len(d) != 0 {
		t.Fatalf("empty data decoded as %v, want non-nil empty", d)
	}
	withNil, _ := Decode(Encode(&BlobData{Hash: hash, Found: false}))
	if d := withNil.(*BlobData).Data; d != nil {
		t.Fatalf("nil data decoded as %v, want nil", d)
	}
}

// TestBlobMessageTruncated rejects truncated encodings at every length.
func TestBlobMessageTruncated(t *testing.T) {
	enc := Encode(&BlobPut{Hash: bytes.Repeat([]byte{1}, 32), Data: []byte("abcdef")})
	for l := 1; l < len(enc); l++ {
		if _, err := Decode(enc[:l]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", l)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
