package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"faust/internal/consistency"
	"faust/internal/history"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// TestClientCrashMidRunDoesNotHurtOthers injects a client crash (link
// closed mid-workload): the surviving clients keep completing operations
// (wait-freedom is per-client) and the overall history — with the crashed
// client's pending op allowed — stays linearizable.
func TestClientCrashMidRunDoesNotHurtOthers(t *testing.T) {
	const n = 4
	cl := NewCluster(n, Options{
		NetOpts: []transport.Option{transport.WithDelay(200*time.Microsecond, 11)},
	})
	defer cl.Stop()

	var wg sync.WaitGroup
	// Client 0 performs a few ops and then "crashes" (link closed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := cl.Write(0, []byte(fmt.Sprintf("dying-%d", i))); err != nil {
				t.Errorf("pre-crash write: %v", err)
				return
			}
		}
		_ = cl.UClients[0].Close()
	}()
	// The others keep a full workload going.
	for c := 1; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if i%2 == 0 {
					if err := cl.Write(c, []byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
						t.Errorf("client %d write: %v", c, err)
						return
					}
				} else if _, err := cl.Read(c, (c+i)%n); err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	h := cl.History()
	if res := consistency.CheckWaitFree(h, func(c int) bool { return c != 0 }); !res.OK {
		t.Fatalf("survivors not wait-free: %s", res.Reason)
	}
	if res := consistency.CheckLinearizable(h); !res.OK {
		t.Fatalf("history with crashed client not linearizable: %s", res.Reason)
	}
}

// TestPiggybackClusterLinearizable runs the Section 5 piggyback variant
// under the same concurrency + checker regime as the standard protocol.
func TestPiggybackClusterLinearizable(t *testing.T) {
	const n = 4
	cl := newPiggybackCluster(t, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%2 == 0 {
					if err := cl.Write(c, []byte(fmt.Sprintf("p%d-%d", c, i))); err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
				} else if _, err := cl.Read(c, (c+1)%n); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if res := consistency.CheckLinearizable(cl.History()); !res.OK {
		t.Fatalf("piggyback history not linearizable: %s", res.Reason)
	}
}

// newPiggybackCluster builds a USTOR cluster whose clients defer COMMITs
// onto the next SUBMIT.
func newPiggybackCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	cl := NewCluster(n, Options{})
	// Swap in piggyback clients over fresh links is not possible (links
	// are taken), so rebuild: stop and construct manually.
	cl.Stop()

	cl2 := &Cluster{N: n, Recorder: history.NewRecorder(n)}
	ring, signers := cl.Ring, cl.Signers
	core := ustor.NewServer(n)
	cl2.Ring = ring
	cl2.Core = core
	cl2.Net = transport.NewNetwork(n, core)
	cl2.UClients = make([]*ustor.Client, n)
	for i := 0; i < n; i++ {
		cl2.UClients[i] = ustor.NewClient(i, ring, signers[i], cl2.Net.ClientLink(i),
			ustor.WithCommitPiggyback())
	}
	t.Cleanup(cl2.Stop)
	return cl2
}
