package blobfleet

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/transport"
)

// testFleet builds a fleet of n FaultyBlobs-wrapped MemBlobs with fast
// test-friendly timings and no background prober.
func testFleet(t *testing.T, n int, opts Options) (*Failover, []*FaultyBlobs, []*transport.MemBlobs) {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = -1 // tests drive ProbeNow explicitly
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = time.Microsecond
		opts.RetryCap = 10 * time.Microsecond
	}
	var backends []Backend
	var faulty []*FaultyBlobs
	var inner []*transport.MemBlobs
	for i := 0; i < n; i++ {
		mb := transport.NewMemBlobs()
		fb := NewFaultyBlobs(fmt.Sprintf("b%d", i), mb, FaultConfig{Seed: int64(i) + 1})
		backends = append(backends, Backend{Name: fmt.Sprintf("b%d", i), Store: fb})
		faulty = append(faulty, fb)
		inner = append(inner, mb)
	}
	f, err := New(backends, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f, faulty, inner
}

// drive feeds n failures (or successes) through a backend's aliveness.
func drive(f *Failover, b *backendState, ok bool, n int) {
	for i := 0; i < n; i++ {
		f.report(b, ok)
	}
}

func TestFailoverReplicatesWrites(t *testing.T) {
	f, _, inner := testFleet(t, 3, Options{WriteReplicas: 2})
	data := []byte("replicated blob")
	hash := crypto.Hash(data)
	if err := f.PutBlob(hash, data); err != nil {
		t.Fatalf("put: %v", err)
	}
	for i, mb := range inner[:2] {
		if got, err := mb.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("backend %d missing replica: %q, %v", i, got, err)
		}
	}
	if _, err := inner[2].GetBlob(hash); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("backend 2 unexpectedly has the blob (w=2): %v", err)
	}
	got, err := f.GetBlob(hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %q, %v", got, err)
	}
	st := f.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.FailoverPuts != 0 || st.FailoverGets != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailoverSurvivesPrimaryDeath(t *testing.T) {
	f, faulty, _ := testFleet(t, 2, Options{WriteReplicas: 1})
	pre := []byte("written before the crash")
	preHash := crypto.Hash(pre)
	if err := f.PutBlob(preHash, pre); err != nil {
		t.Fatalf("put: %v", err)
	}

	faulty[0].Kill()
	// Writes skip past the dead primary to the secondary; reads that the
	// primary can no longer serve come from the secondary. No error may
	// reach the caller.
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("post-crash %d", i))
		hash := crypto.Hash(data)
		if err := f.PutBlob(hash, data); err != nil {
			t.Fatalf("put %d during primary outage: %v", i, err)
		}
		if got, err := f.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("get %d during primary outage: %v", i, err)
		}
	}
	st := f.Stats()
	if st.FailoverPuts == 0 || st.FailoverGets == 0 {
		t.Fatalf("no failovers recorded during outage: %+v", st)
	}
	if st.BackendsDied == 0 {
		t.Fatal("primary never left the rotation")
	}
	status := f.Status()
	if status[0].Alive {
		t.Fatalf("primary still in rotation: %+v", status)
	}

	// The pre-crash blob was written with w=1 (primary only) and the
	// primary is dead: the fleet must fail the read, not invent data.
	if _, err := f.GetBlob(preHash); err == nil {
		t.Fatal("pre-crash blob readable while its only replica is dead")
	}

	faulty[0].Revive()
	f.ProbeNow()
	if !f.Status()[0].Alive {
		t.Fatal("probe did not resurrect the revived primary")
	}
	if got, err := f.GetBlob(preHash); err != nil || !bytes.Equal(got, pre) {
		t.Fatalf("pre-crash blob after recovery: %q, %v", got, err)
	}
}

func TestFailoverReadRepair(t *testing.T) {
	f, _, inner := testFleet(t, 2, Options{WriteReplicas: 1})
	data := []byte("only on the secondary")
	hash := crypto.Hash(data)
	// Plant the blob on the secondary only, as if the primary were wiped.
	if err := inner[1].PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	got, err := f.GetBlob(hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %q, %v", got, err)
	}
	// Read repair must have copied it back to the primary.
	if got, err := inner[0].GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("primary not repaired: %q, %v", got, err)
	}
	st := f.Stats()
	if st.ReadRepairs != 1 || st.FailoverGets != 1 {
		t.Fatalf("stats = %+v, want 1 read repair and 1 failover get", st)
	}
	// The next read is served by the repaired primary.
	if _, err := f.GetBlob(hash); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.FailoverGets != 1 {
		t.Fatalf("read after repair still failed over: %+v", st)
	}
}

func TestFailoverSkipsTamperedReplica(t *testing.T) {
	f, faulty, _ := testFleet(t, 2, Options{WriteReplicas: 2})
	data := []byte("verified end to end")
	hash := crypto.Hash(data)
	if err := f.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	// Turn the primary byzantine: every payload it serves is bit-flipped.
	faulty[0].SetConfig(FaultConfig{FlipRate: 1})
	got, err := f.GetBlob(hash)
	if err != nil {
		t.Fatalf("get with byzantine primary: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fleet served a corrupt payload")
	}
	st := f.Stats()
	if st.TamperSkips == 0 {
		t.Fatal("tampered replica was not counted as skipped")
	}
	if st.FailoverGets == 0 {
		t.Fatal("read was not served by the honest secondary")
	}

	// Both replicas byzantine: the fleet must refuse, not serve garbage.
	faulty[1].SetConfig(FaultConfig{FlipRate: 1})
	if _, err := f.GetBlob(hash); err == nil {
		t.Fatal("get with all replicas tampered succeeded")
	}
}

func TestFailoverRetriesTransientFailures(t *testing.T) {
	// ErrRate 0.5 with 3 attempts per backend: a single-backend fleet
	// should almost always get an op through, and retries must register.
	f, _, _ := testFleet(t, 1, Options{WriteReplicas: 1, RetryAttempts: 6})
	fb := f.backends[0].Store.(*FaultyBlobs)
	fb.SetConfig(FaultConfig{Seed: 7, ErrRate: 0.5})
	data := []byte("retried")
	hash := crypto.Hash(data)
	ok := 0
	for i := 0; i < 30; i++ {
		if err := f.PutBlob(hash, data); err == nil {
			ok++
		}
	}
	if ok < 25 {
		t.Fatalf("only %d/30 puts survived ErrRate=0.5 with 6 attempts", ok)
	}
	if f.Stats().Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestFailoverAllDeadStillTries(t *testing.T) {
	f, faulty, _ := testFleet(t, 2, Options{WriteReplicas: 1, RetryAttempts: 1})
	data := []byte("last resort")
	hash := crypto.Hash(data)
	// Drive both backends out of the rotation...
	for _, b := range f.backends {
		drive(f, b, false, 20)
	}
	if got := f.Status(); got[0].Alive || got[1].Alive {
		t.Fatalf("backends still alive after failure streak: %+v", got)
	}
	// ...but the stores actually work (the EMA is pessimistic, the
	// backends are fine). A fully dead fleet must still attempt.
	_ = faulty
	if err := f.PutBlob(hash, data); err != nil {
		t.Fatalf("put with all-dead rotation: %v", err)
	}
	if got, err := f.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get with all-dead rotation: %q, %v", got, err)
	}
}

func TestFailoverNotFound(t *testing.T) {
	f, _, _ := testFleet(t, 3, Options{})
	_, err := f.GetBlob(crypto.Hash([]byte("never written")))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing blob: %v, want fs.ErrNotExist", err)
	}
}

func TestFailoverEMAHysteresis(t *testing.T) {
	f, _, _ := testFleet(t, 1, Options{})
	b := f.backends[0]
	// One failure must not kill a healthy backend (score 1 -> 0.7).
	f.report(b, false)
	if b.isDead() {
		t.Fatal("backend died after a single failure")
	}
	// A streak does.
	drive(f, b, false, 10)
	if !b.isDead() {
		t.Fatalf("backend alive after 11 straight failures (score %.3f)", b.status().Score)
	}
	died := f.Stats().BackendsDied
	if died != 1 {
		t.Fatalf("BackendsDied = %d, want 1", died)
	}
	// One success must not resurrect it (hysteresis)...
	f.report(b, true)
	if b.isDead() == false {
		t.Fatal("backend resurrected by a single success")
	}
	// ...but a streak of successes must.
	drive(f, b, true, 10)
	if b.isDead() {
		t.Fatalf("backend dead after a success streak (score %.3f)", b.status().Score)
	}
	if got := f.Stats().BackendsRevive; got != 1 {
		t.Fatalf("BackendsRevive = %d, want 1", got)
	}
}

func TestFailoverProbeResurrectsOnlyAnsweringBackends(t *testing.T) {
	f, faulty, _ := testFleet(t, 2, Options{})
	for _, b := range f.backends {
		drive(f, b, false, 20)
	}
	faulty[0].Kill() // b0 really is down; b1 just had a bad streak
	f.ProbeNow()
	st := f.Status()
	if st[0].Alive {
		t.Fatal("probe resurrected a killed backend")
	}
	if !st[1].Alive {
		t.Fatal("probe did not resurrect an answering backend")
	}
	stats := f.Stats()
	if stats.ProbesOK == 0 || stats.ProbesFailed == 0 {
		t.Fatalf("probe stats = %+v", stats)
	}
}

func TestFailoverBackgroundProber(t *testing.T) {
	f, faulty, _ := testFleet(t, 1, Options{ProbeInterval: 5 * time.Millisecond})
	faulty[0].Kill()
	drive(f, f.backends[0], false, 20)
	if !f.backends[0].isDead() {
		t.Fatal("setup: backend should be dead")
	}
	faulty[0].Revive()
	deadline := time.Now().Add(2 * time.Second)
	for f.backends[0].isDead() {
		if time.Now().After(deadline) {
			t.Fatal("background prober never resurrected the backend")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFailoverConcurrentFlapping is the -race model test: concurrent
// puts and gets while backends flap dead and alive. Every operation
// must either succeed with intact data or fail cleanly — and once the
// flapping stops, everything written must be readable and verified.
func TestFailoverConcurrentFlapping(t *testing.T) {
	f, faulty, _ := testFleet(t, 3, Options{WriteReplicas: 2, RetryAttempts: 2})

	const writers, blobsPerWriter = 4, 30
	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopFlap:
				return
			default:
			}
			victim := faulty[i%len(faulty)]
			victim.Kill()
			time.Sleep(200 * time.Microsecond)
			victim.Revive()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	type blob struct{ hash, data []byte }
	written := make(chan blob, writers*blobsPerWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < blobsPerWriter; i++ {
				data := []byte(fmt.Sprintf("writer %d blob %d", w, i))
				hash := crypto.Hash(data)
				if err := f.PutBlob(hash, data); err == nil {
					written <- blob{hash, data}
					// Read-back under flapping: success must be intact.
					if got, err := f.GetBlob(hash); err == nil && !bytes.Equal(got, data) {
						t.Errorf("writer %d: corrupt read of blob %d", w, i)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopFlap)
	flapWG.Wait()
	close(written)

	// Quiesce: revive everything, resurrect the rotation.
	for _, fb := range faulty {
		fb.Revive()
	}
	f.ProbeNow()
	n := 0
	for b := range written {
		got, err := f.GetBlob(b.hash)
		if err != nil {
			t.Fatalf("acknowledged blob unreadable after quiesce: %v", err)
		}
		if !bytes.Equal(got, b.data) {
			t.Fatal("acknowledged blob corrupt after quiesce")
		}
		n++
	}
	if n == 0 {
		t.Fatal("no puts succeeded during flapping — the fleet wedged")
	}
	t.Logf("%d/%d puts acknowledged during flapping, all verified", n, writers*blobsPerWriter)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New([]Backend{{Name: "b"}}, Options{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New([]Backend{{Name: "b", Store: transport.NewMemBlobs()}},
		Options{DeadBelow: 0.9, AliveAbove: 0.4}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	// WriteReplicas above the fleet size is capped, not an error.
	f, err := New([]Backend{{Name: "b", Store: transport.NewMemBlobs()}},
		Options{WriteReplicas: 5, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.opts.WriteReplicas != 1 {
		t.Fatalf("WriteReplicas = %d, want capped to 1", f.opts.WriteReplicas)
	}
}
