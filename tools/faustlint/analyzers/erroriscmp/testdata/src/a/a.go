// Fixture for the erroriscmp analyzer.
package a

import (
	"errors"
	"io"
)

// ErrCodec is a package-level sentinel, like wire.ErrCodec.
var ErrCodec = errors.New("a: malformed frame")

func read() ([]byte, error) { return nil, io.EOF }

func eqSentinel(err error) bool {
	return err == io.EOF // want `error == io\.EOF misses wrapped errors; use errors\.Is`
}

func neqSentinel(err error) bool {
	return err != io.EOF // want `error != io\.EOF misses wrapped errors; use errors\.Is`
}

func localSentinel(err error) bool {
	return err == ErrCodec // want `error == a\.ErrCodec misses wrapped errors; use errors\.Is`
}

func sentinelOnLeft(err error) bool {
	return ErrCodec == err // want `error == a\.ErrCodec misses wrapped errors; use errors\.Is`
}

// nil comparisons are the normal idiom, not a sentinel comparison.
func nilCheck(err error) bool {
	return err == nil || nil != err
}

// Two locals compared for identity: allowed.
func identity(err error) bool {
	_, other := read()
	return err == other
}

// errors.Is is the fix, never flagged.
func theFix(err error) bool {
	return errors.Is(err, io.EOF)
}

// A switch over an error value with sentinel cases.
func switchSentinel(err error) int {
	switch err {
	case nil:
		return 0
	case io.EOF: // want `switch-case comparison of an error against sentinel io\.EOF`
		return 1
	}
	return 2
}

// A switch over a non-error tag is untouched.
func switchInt(n int) int {
	switch n {
	case 0:
		return 0
	}
	return 1
}

// justified ignore: comparing against a never-wrapped in-package signal.
func ignored(err error) bool {
	//faustlint:ignore erroriscmp this sentinel is returned directly by read and never wrapped
	return err == ErrCodec
}
