// Package faustload loads and type-checks Go packages for the vendored
// analysis driver without golang.org/x/tools/go/packages. Two loading
// modes cover the two call sites:
//
//   - Load resolves module-relative patterns by shelling out to
//     `go list` (so workspaces, nested modules and build constraints are
//     handled by the go command itself) and type-checks the listed
//     packages with the standard library's source importer. The source
//     importer resolves module imports through the go command relative
//     to the process working directory, so drivers must run from the
//     directory the patterns are relative to — exactly what
//     `go run ./tools/faustlint ./...` does.
//
//   - LoadTree loads GOPATH-style package trees rooted at a plain
//     directory (analysistest fixtures under testdata/src), resolving
//     inter-fixture imports inside the tree and everything else through
//     the source importer.
//
// Only non-test files are loaded: faustlint's invariants target
// production code, and _test.go files of the repo under analysis are
// free to take shortcuts (unexported access, deliberate violations to
// provoke detections).
package faustload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func sizes() types.Sizes {
	s := types.SizesFor("gc", runtime.GOARCH)
	if s == nil {
		s = types.SizesFor("gc", "amd64")
	}
	return s
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Match      []string
	Error      *struct{ Err string }
}

// Load lists patterns with the go command and type-checks every matched
// package. It fails on the first package that does not type-check: a
// lint run over code that does not compile reports garbage.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json=Dir,ImportPath,Name,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	szs := sizes()
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil && lp.Error.Err != "" {
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: szs}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			TypesInfo:  info,
			TypesSizes: szs,
		})
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// treeImporter resolves imports for LoadTree: paths with a directory
// under the tree root load (and cache) from the tree; everything else
// falls through to the standard library's source importer.
type treeImporter struct {
	root     string // the GOPATH-style src directory
	fset     *token.FileSet
	fallback types.Importer
	cache    map[string]*treeEntry
	sizes    types.Sizes
}

type treeEntry struct {
	pkg *Package
	err error
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if p, err := ti.load(path); p != nil {
		return p.Types, err
	} else if err != nil {
		return nil, err
	}
	return ti.fallback.Import(path)
}

// ImportFrom satisfies types.ImporterFrom so the type checker hands us
// every import; srcDir is ignored because tree imports are rooted.
func (ti *treeImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	return ti.Import(path)
}

// load returns the tree package for path, nil when path is not in the
// tree (the caller then falls back to the stdlib importer).
func (ti *treeImporter) load(path string) (*Package, error) {
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	names, err := goFilesIn(dir)
	if err != nil || len(names) == 0 {
		return nil, nil // not a tree package
	}
	if e, ok := ti.cache[path]; ok {
		return e.pkg, e.err
	}
	// Reserve the slot first so import cycles fail fast instead of
	// recursing forever.
	ti.cache[path] = &treeEntry{err: fmt.Errorf("import cycle through %s", path)}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ti.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			ti.cache[path] = &treeEntry{err: err}
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: ti, Sizes: ti.sizes}
	tpkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		err = fmt.Errorf("type-checking %s: %v", path, err)
		ti.cache[path] = &treeEntry{err: err}
		return nil, err
	}
	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       ti.fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		TypesSizes: ti.sizes,
	}
	ti.cache[path] = &treeEntry{pkg: p}
	return p, nil
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadTree loads the packages named by patterns from a GOPATH-style
// src root (each pattern is a package path relative to root/src).
func LoadTree(root string, patterns []string) ([]*Package, error) {
	src := filepath.Join(root, "src")
	fset := token.NewFileSet()
	ti := &treeImporter{
		root:     src,
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		cache:    map[string]*treeEntry{},
		sizes:    sizes(),
	}
	var pkgs []*Package
	for _, pat := range patterns {
		p, err := ti.load(pat)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("no fixture package %q under %s", pat, src)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
