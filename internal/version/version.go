// Package version implements the version abstraction at the heart of the
// USTOR protocol (Section 5 of the paper): pairs (V, M) of a timestamp
// vector and a digest vector, the partial order on versions (Definition 7)
// and the hash-chain digest D over view histories.
//
// A client C_i maintains a version (V_i, M_i). Entry V_i[j] holds the
// timestamp of the last operation by C_j scheduled before C_i's latest
// operation, and M_i[j] holds the digest of C_i's expectation of C_j's
// view history at that operation. Versions committed by a correct server
// form a totally ordered chain; incomparable versions are proof of a
// forking attack.
package version

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"faust/internal/crypto"
)

// Version is the pair (V, M) of Algorithm 1. The zero-length Version is
// not valid; use New. A nil digest entry represents the paper's bottom.
type Version struct {
	V []int64  // timestamp vector, one entry per client
	M [][]byte // digest vector, one entry per client; nil = bottom
}

// New returns the initial version (0^n, bottom^n) for n clients.
func New(n int) Version {
	return Version{V: make([]int64, n), M: make([][]byte, n)}
}

// N returns the number of clients this version covers.
func (v Version) N() int { return len(v.V) }

// Clone returns a deep copy of v. Versions cross API boundaries
// frequently; callers that retain or mutate must clone.
func (v Version) Clone() Version {
	c := Version{V: make([]int64, len(v.V)), M: make([][]byte, len(v.M))}
	copy(c.V, v.V)
	for i, d := range v.M {
		if d != nil {
			c.M[i] = append([]byte(nil), d...)
		}
	}
	return c
}

// CopyFrom makes v a deep copy of w, reusing v's backing storage where
// possible. When the dimensions match and v's digest entries have capacity
// for w's (the steady state — all non-initial digests are HashSize bytes),
// the copy performs no allocation. v must own its storage exclusively:
// digests previously shared out of v (e.g. inside sent messages) must have
// been cloned at the sharing point.
func (v *Version) CopyFrom(w Version) {
	if cap(v.V) < len(w.V) {
		v.V = make([]int64, len(w.V))
	}
	v.V = v.V[:len(w.V)]
	copy(v.V, w.V)
	if cap(v.M) < len(w.M) {
		v.M = make([][]byte, len(w.M))
	}
	v.M = v.M[:len(w.M)]
	for i, d := range w.M {
		switch {
		case d == nil:
			v.M[i] = nil
		case cap(v.M[i]) >= len(d):
			v.M[i] = append(v.M[i][:0], d...)
		default:
			v.M[i] = append([]byte(nil), d...)
		}
	}
}

// IsZero reports whether v is the initial version (0^n, bottom^n).
func (v Version) IsZero() bool {
	for _, t := range v.V {
		if t != 0 {
			return false
		}
	}
	for _, d := range v.M {
		if d != nil {
			return false
		}
	}
	return true
}

// LessEq reports whether v is smaller than or equal to w in the order of
// Definition 7: V <= W entrywise, and for every k with V[k] == W[k] the
// digests M[k] and W.M[k] agree. Versions of different dimension are
// never ordered.
func (v Version) LessEq(w Version) bool {
	if len(v.V) != len(w.V) || len(v.M) != len(w.M) {
		return false
	}
	for k := range v.V {
		if v.V[k] > w.V[k] {
			return false
		}
	}
	for k := range v.V {
		if v.V[k] == w.V[k] && !bytes.Equal(v.M[k], w.M[k]) {
			return false
		}
	}
	return true
}

// Less reports the strict order: v.LessEq(w) and v != w.
func (v Version) Less(w Version) bool {
	return v.LessEq(w) && !v.Equal(w)
}

// Equal reports whether the two versions are identical.
func (v Version) Equal(w Version) bool {
	if len(v.V) != len(w.V) || len(v.M) != len(w.M) {
		return false
	}
	for k := range v.V {
		if v.V[k] != w.V[k] {
			return false
		}
	}
	for k := range v.M {
		if !bytes.Equal(v.M[k], w.M[k]) {
			return false
		}
	}
	return true
}

// Comparable reports whether v and w are ordered either way. FAUST treats
// incomparable versions as proof of server misbehavior.
func Comparable(v, w Version) bool {
	return v.LessEq(w) || w.LessEq(v)
}

// Max returns the larger of two comparable versions. The boolean is false
// when the versions are incomparable, in which case the first argument is
// returned unchanged.
func Max(v, w Version) (Version, bool) {
	switch {
	case v.LessEq(w):
		return w, true
	case w.LessEq(v):
		return v, true
	default:
		return v, false
	}
}

// VectorLessEq reports the plain entrywise order V <= W on timestamp
// vectors, ignoring digests. The server uses it (Algorithm 2 line 119) to
// track the last committed operation in the schedule.
func VectorLessEq(v, w []int64) bool {
	if len(v) != len(w) {
		return false
	}
	for k := range v {
		if v[k] > w[k] {
			return false
		}
	}
	return true
}

// VectorLess reports V <= W and V != W.
func VectorLess(v, w []int64) bool {
	if !VectorLessEq(v, w) {
		return false
	}
	for k := range v {
		if v[k] != w[k] {
			return true
		}
	}
	return false
}

// DigestStep extends a view-history digest by one operation executed by
// client k: D(w_1..w_m) = H(D(w_1..w_{m-1}) || be32(k)), with nil for the
// empty sequence. All non-initial digests are exactly HashSize bytes, so
// the encoding is prefix-unambiguous.
func DigestStep(d []byte, k int) []byte {
	return DigestStepInto(nil, d, k)
}

// DigestStepInto is DigestStep appending into dst: with capacity for
// HashSize bytes the call is allocation-free. The digest is computed
// before dst is written, so dst[:0] may alias d itself.
func DigestStepInto(dst []byte, d []byte, k int) []byte {
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(k))
	return crypto.HashInto(dst, d, idx[:])
}

// DigestOfSequence computes the digest of a whole sequence of client
// indices, D(w_1..w_m). It returns nil for the empty sequence.
func DigestOfSequence(clients []int) []byte {
	var d []byte
	for _, k := range clients {
		d = DigestStep(d, k)
	}
	return d
}

// CanonicalBytes returns a deterministic encoding of the version, used as
// the payload of COMMIT-signatures. The encoding is
// n || V[0..n-1] || (len,digest)[0..n-1] with fixed-width integers; a nil
// digest encodes as length 2^32-1 to distinguish bottom from an empty
// digest.
func (v Version) CanonicalBytes() []byte {
	size := 4 + 8*len(v.V)
	for _, d := range v.M {
		size += 4 + len(d)
	}
	return v.AppendCanonical(make([]byte, 0, size))
}

// AppendCanonical appends the canonical encoding to buf and returns the
// extended slice; with sufficient capacity the call is allocation-free.
// Signature hot paths build COMMIT payloads into reusable scratch buffers
// with it.
func (v Version) AppendCanonical(buf []byte) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(v.V)))
	buf = append(buf, tmp[:4]...)
	for _, t := range v.V {
		binary.BigEndian.PutUint64(tmp[:], uint64(t))
		buf = append(buf, tmp[:]...)
	}
	for _, d := range v.M {
		if d == nil {
			binary.BigEndian.PutUint32(tmp[:4], ^uint32(0))
			buf = append(buf, tmp[:4]...)
			continue
		}
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(d)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, d...)
	}
	return buf
}

// String renders the version compactly for logs and test failures.
func (v Version) String() string {
	var b strings.Builder
	b.WriteString("V[")
	for i, t := range v.V {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteString("] M[")
	for i, d := range v.M {
		if i > 0 {
			b.WriteByte(' ')
		}
		if d == nil {
			b.WriteString("_")
		} else {
			fmt.Fprintf(&b, "%x", d[:4])
		}
	}
	b.WriteString("]")
	return b.String()
}
