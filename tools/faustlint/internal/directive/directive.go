// Package directive implements the //faustlint:ignore escape hatch and
// the //faustlint:hotpath opt-in marker.
//
// An ignore directive suppresses faustlint diagnostics on the line it
// annotates (trailing on the flagged line, or alone on the line above):
//
//	conn.Write(b) //faustlint:ignore lockheldio per-conn wmu exists to serialize writes
//
// The first fields name the analyzers being silenced ("all" silences
// every analyzer); everything after them is the justification. A
// justification is MANDATORY — an ignore without one is not honored,
// and the diagnostic it tried to suppress is reported with a note, so
// an unexplained escape hatch can never make CI green.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const (
	ignorePrefix  = "faustlint:ignore"
	hotpathPrefix = "faustlint:hotpath"
)

// known holds every registered analyzer name; only these (and "all")
// are parsed as the directive's analyzer list, so a lowercase
// justification word is never mistaken for an analyzer name.
var known = map[string]bool{"all": true}

// Register records analyzer names for directive parsing. Each analyzer
// package registers itself at init:
//
//	var _ = directive.Register(Analyzer.Name)
func Register(names ...string) struct{} {
	for _, n := range names {
		known[n] = true
	}
	return struct{}{}
}

// ignoreDirective is one parsed //faustlint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string
	justified bool
}

// covers reports whether the directive silences the named analyzer.
func (d *ignoreDirective) covers(name string) bool {
	for _, a := range d.analyzers {
		if a == name || a == "all" {
			return true
		}
	}
	return false
}

// fileIgnores parses every ignore directive of a file, keyed by the
// line the directive shields (its own line and, for directives that
// stand alone, also the next line — a stand-alone directive shields the
// statement below it).
func fileIgnores(fset *token.FileSet, file *ast.File) map[int][]*ignoreDirective {
	out := map[int][]*ignoreDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, ignorePrefix)
			fields := strings.Fields(rest)
			d := &ignoreDirective{line: fset.Position(c.Pos()).Line}
			for i, f := range fields {
				// The leading fields that name registered analyzers form
				// the silence list; the first other word starts the
				// justification.
				if known[f] {
					d.analyzers = append(d.analyzers, f)
					continue
				}
				d.justified = strings.TrimSpace(strings.Join(fields[i:], " ")) != ""
				break
			}
			out[d.line] = append(out[d.line], d)
			out[d.line+1] = append(out[d.line+1], d)
		}
	}
	return out
}

// Pass wraps an analysis.Pass with ignore-directive filtering. Build
// one per analyzer run with New and report through it.
type Pass struct {
	*analysis.Pass
	ignores map[*ast.File]map[int][]*ignoreDirective
}

// New wraps pass with directive handling.
func New(pass *analysis.Pass) *Pass {
	p := &Pass{Pass: pass, ignores: map[*ast.File]map[int][]*ignoreDirective{}}
	for _, f := range pass.Files {
		p.ignores[f] = fileIgnores(pass.Fset, f)
	}
	return p
}

// Reportf reports a diagnostic unless a justified ignore directive for
// this analyzer covers the line. An unjustified directive is called out
// in the diagnostic instead of being honored.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	line := p.Fset.Position(pos).Line
	note := ""
	for _, file := range p.Files {
		if file.Pos() > pos || pos > file.End() {
			continue
		}
		for _, d := range p.ignores[file][line] {
			if !d.covers(p.Analyzer.Name) {
				continue
			}
			if d.justified {
				return // suppressed
			}
			note = " [faustlint:ignore directive present but missing a justification — not honored]"
		}
	}
	p.Pass.Reportf(pos, format+"%s", append(args, note)...)
}

// HotpathFuncs returns the functions of the file set opted into the
// zero-allocation contract with a //faustlint:hotpath marker in their
// doc comment or on the line above their declaration.
func HotpathFuncs(fset *token.FileSet, files []*ast.File) map[*ast.FuncDecl]bool {
	out := map[*ast.FuncDecl]bool{}
	for _, file := range files {
		marked := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotpathPrefix) {
					marked[fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			declLine := fset.Position(fd.Pos()).Line
			if marked[declLine-1] {
				out[fd] = true
				continue
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotpathPrefix) {
						out[fd] = true
					}
				}
			}
		}
	}
	return out
}
