// Faust-server hosts the USTOR storage server over TCP.
//
// The server is the UNTRUSTED party of the protocol: it holds no keys and
// verifies nothing; all guarantees are enforced by the clients. Keys are
// derived deterministically from -seed so that server-less tools (clients)
// can derive the same public keys; use real key distribution in anything
// beyond a demo.
//
// Example:
//
//	faust-server -addr :7440 -n 3 -data-dir /var/lib/faust
//	faust-client -server localhost:7440 -n 3 -id 0        # in another shell
//
// # Persistence
//
// Without -data-dir the server state lives in memory and a restart rolls
// every client back — which their fail-awareness checks then report as a
// server fault. With -data-dir the server runs write-ahead logged
// (internal/store): every SUBMIT and COMMIT is appended to the log before
// it is applied, and a full state snapshot is rotated in every
// -snapshot-every records.
//
// On-disk layout inside -data-dir (one generation of each at steady
// state):
//
//	snap-00000007       full server state (MEM, c, SVER, L, P), CRC-checked
//	wal-00000007.log    records since that snapshot: u32 len | u32 CRC-32C | payload
//
// Recovery on boot loads the newest valid snapshot and replays the WAL
// tail. A torn final record (the append in flight at crash time) is
// dropped silently: the server never replied to that operation, so no
// client observed it. Snapshots rotate atomically (tmp + rename), so a
// crash during rotation leaves the previous baseline intact.
//
// -fsync makes WAL records survive power loss: off, state survives process
// crashes (OS page cache); on, it also survives power loss (see
// BenchmarkServerPersist and faust-bench -run persist).
//
// The WAL runs in group-commit mode by default (-group-commit=false for
// per-record writes): records buffer briefly and reach the disk as one
// batched write plus — with -fsync — a single fdatasync that covers every
// record a REPLY depends on. -flush-interval bounds how long an idle
// COMMIT may stay buffered; losing one to a crash inside that window is
// fail-safe (the committing client reports the rollback rather than
// accepting it).
//
// Durability is deliberately unauthenticated: a data directory altered by
// an attacker (e.g. a truncated WAL rolling the state back) recovers
// "successfully" — and the clients' Algorithm 1 checks then expose it
// exactly as they expose a lying live server. The store protects against
// crashes; fail-awareness protects against everything else.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

func main() {
	addr := flag.String("addr", ":7440", "listen address")
	n := flag.Int("n", 3, "number of clients (registers)")
	dataDir := flag.String("data-dir", "", "persistence directory; empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 1024, "rotate a state snapshot every N logged records (0 = never)")
	fsync := flag.Bool("fsync", false, "sync the WAL before every reply (survives power loss, slower)")
	groupCommit := flag.Bool("group-commit", true, "batch WAL records into one write+sync per reply instead of one per record")
	flushInterval := flag.Duration("flush-interval", 2*time.Millisecond, "group-commit: max time a buffered record may wait for a background flush")
	flag.Parse()

	if *n <= 0 {
		log.Fatalf("faust-server: -n must be positive, got %d", *n)
	}

	var core transport.ServerCore = ustor.NewServer(*n)
	var ps *store.Persistent
	if *dataDir != "" {
		backend, err := store.OpenFile(*dataDir, store.FileOptions{
			Fsync:         *fsync,
			GroupCommit:   *groupCommit,
			FlushInterval: *flushInterval,
		})
		if err != nil {
			log.Fatalf("faust-server: %v", err)
		}
		ps, err = store.Open(ustor.NewServer(*n), backend, store.Options{SnapshotEvery: *snapshotEvery})
		if err != nil {
			log.Fatalf("faust-server: recovering state: %v", err)
		}
		fromSnap, replayed := ps.Recovered()
		fmt.Printf("faust-server: recovered from %s (snapshot: %v, WAL records replayed: %d, fsync: %v, group-commit: %v)\n",
			*dataDir, fromSnap, replayed, *fsync, *groupCommit)
		core = ps
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("faust-server: listen: %v", err)
	}
	srv := transport.ServeTCP(ln, core)
	fmt.Printf("faust-server: serving %d registers on %s\n", *n, ln.Addr())
	fmt.Println("faust-server: this process is the UNTRUSTED party; clients verify everything")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nfaust-server: shutting down")
	srv.Stop()
	if ps != nil {
		// Final snapshot so the next boot replays nothing; then release.
		if err := ps.Snapshot(); err != nil {
			log.Printf("faust-server: final snapshot: %v", err)
		}
		if err := ps.Close(); err != nil {
			log.Printf("faust-server: closing store: %v", err)
		}
	}
}
