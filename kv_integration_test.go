package faust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"

	"faust/internal/crypto"
	"faust/internal/kv"
	"faust/internal/shard"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// TestTCPMultiShardKV runs the full KV stack against a multi-tenant TCP
// server: two persistent shards, each with its own KV namespaces, blob
// directory and WAL. It proves (1) the namespaces are isolated even for
// identical client identities and keys, (2) each shard's KV root AND its
// chunked values recover across a server restart (registers from the
// WAL, chunks from the per-shard blob directory), and (3) reconnected
// clients resume the KV protocol without a fail signal — while a
// rolled-back shard WOULD be flagged (covered by the existing rollback
// tests; here recovery is honest).
func TestTCPMultiShardKV(t *testing.T) {
	const n = 2
	base := t.TempDir()
	ring, signers := crypto.NewTestKeyring(n, 91)

	newRouter := func() *shard.Router {
		r, err := shard.NewRouter([]shard.Spec{
			{Name: "alpha", N: n, Persist: true},
			{Name: "beta", N: n, Persist: true},
		}, shard.Options{BaseDir: base, StoreOptions: store.Options{SnapshotEvery: 8}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serve := func(r *shard.Router) (*transport.TCPServer, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return transport.ServeTCPSharded(ln, r), ln.Addr().String()
	}

	router := newRouter()
	srv, addr := serve(router)

	dial := func(shardName string, id int) (*ustor.Client, transport.BlobChannel) {
		link, err := transport.DialTCPShard(addr, shardName, id)
		if err != nil {
			t.Fatalf("dial %s/%d: %v", shardName, id, err)
		}
		ch, err := transport.DialTCPBlob(addr, shardName)
		if err != nil {
			t.Fatalf("blob dial %s: %v", shardName, err)
		}
		return ustor.NewClient(id, ring, signers[id], link), ch
	}

	// Client 0 of each shard owns a namespace; the same key holds
	// different values per shard, including a multi-chunk one. Alpha
	// uses a tiny tree fanout so its directory spans many tree-node
	// blobs across several levels — all of which must persist in the
	// shard's blob directory and recover across the restart.
	bigAlpha := bytes.Repeat([]byte("alpha-bulk "), 2000) // ~22 KB, >1 chunk at 8 KiB
	alpha0c, alpha0ch := dial("alpha", 0)
	beta0c, beta0ch := dial("beta", 0)
	alpha0, err := kv.Open(alpha0c, alpha0ch, kv.WithChunkSize(8<<10), kv.WithTreeFanout(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	beta0, err := kv.Open(beta0c, beta0ch, kv.WithChunkSize(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := alpha0.Put(context.Background(), "shared-key", []byte("alpha-value")); err != nil {
		t.Fatal(err)
	}
	if err := alpha0.Put(context.Background(), "bulk", bigAlpha); err != nil {
		t.Fatal(err)
	}
	batch := make([]kv.Item, 40)
	for i := range batch {
		batch[i] = kv.Item{Key: fmt.Sprintf("batch-%03d", i), Value: []byte(fmt.Sprintf("payload-%03d", i))}
	}
	if err := alpha0.PutBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if h := alpha0.Height(); h < 3 {
		t.Fatalf("alpha tree height = %d, want >= 3 (the restart must recover a real multi-level tree)", h)
	}
	if err := beta0.Put(context.Background(), "shared-key", []byte("beta-value")); err != nil {
		t.Fatal(err)
	}
	if err := beta0.Put(context.Background(), "beta-only", []byte("exists only here")); err != nil {
		t.Fatal(err)
	}

	// Isolation, observed through reader clients (id 1) of each shard.
	alpha1c, alpha1ch := dial("alpha", 1)
	beta1c, beta1ch := dial("beta", 1)
	alpha1, err := kv.Open(alpha1c, alpha1ch, kv.WithChunkSize(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	beta1, err := kv.Open(beta1c, beta1ch, kv.WithChunkSize(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := alpha1.GetFrom(context.Background(), 0, "shared-key"); err != nil || string(v) != "alpha-value" {
		t.Fatalf("alpha read = %q, %v", v, err)
	}
	if v, err := beta1.GetFrom(context.Background(), 0, "shared-key"); err != nil || string(v) != "beta-value" {
		t.Fatalf("beta read = %q, %v", v, err)
	}
	if _, err := alpha1.GetFrom(context.Background(), 0, "beta-only"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("cross-shard leak: alpha sees beta-only (%v)", err)
	}
	if v, err := alpha1.GetFrom(context.Background(), 0, "bulk"); err != nil || !bytes.Equal(v, bigAlpha) {
		t.Fatalf("alpha bulk read failed: %d bytes, %v", len(v), err)
	}

	// Each shard keeps its own blob directory on disk.
	for _, name := range []string{"alpha", "beta"} {
		dir := filepath.Join(base, "shards", name, "blobs")
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Fatalf("missing per-shard blob dir %s: %v", dir, err)
		}
	}

	// Full server restart: registers recover from each shard's WAL,
	// chunks from each shard's blob directory.
	srv.Stop()
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	router2 := newRouter()
	srv2, addr2 := serve(router2)
	defer func() {
		srv2.Stop()
		_ = router2.Close()
	}()
	addr = addr2

	// The readers resume their protocol state (Rebind) with fresh KV
	// stores (empty caches) — everything must be refetched and verified
	// from recovered server state.
	redial := func(c *ustor.Client, shardName string, id int) transport.BlobChannel {
		link, err := transport.DialTCPShard(addr, shardName, id)
		if err != nil {
			t.Fatalf("redial %s/%d: %v", shardName, id, err)
		}
		c.Rebind(link)
		ch, err := transport.DialTCPBlob(addr, shardName)
		if err != nil {
			t.Fatalf("blob redial %s: %v", shardName, err)
		}
		return ch
	}
	alpha1r, err := kv.Open(alpha1c, redial(alpha1c, "alpha", 1), kv.WithChunkSize(8<<10))
	if err != nil {
		t.Fatalf("alpha reader reopen: %v", err)
	}
	beta1r, err := kv.Open(beta1c, redial(beta1c, "beta", 1), kv.WithChunkSize(8<<10))
	if err != nil {
		t.Fatalf("beta reader reopen: %v", err)
	}
	if v, err := alpha1r.GetFrom(context.Background(), 0, "shared-key"); err != nil || string(v) != "alpha-value" {
		t.Fatalf("alpha read after restart = %q, %v", v, err)
	}
	if v, err := alpha1r.GetFrom(context.Background(), 0, "bulk"); err != nil || !bytes.Equal(v, bigAlpha) {
		t.Fatalf("alpha bulk after restart: %d bytes, %v", len(v), err)
	}
	// Every level of alpha's multi-node tree recovered from the shard's
	// blob directory: a full authenticated listing touches all of it.
	if keys, err := alpha1r.ListFrom(context.Background(), 0); err != nil || len(keys) != 42 {
		t.Fatalf("alpha ListFrom after restart = %d keys, %v; want 42", len(keys), err)
	}
	if v, err := alpha1r.GetFrom(context.Background(), 0, "batch-025"); err != nil || string(v) != "payload-025" {
		t.Fatalf("alpha batch key after restart = %q, %v", v, err)
	}
	if v, err := beta1r.GetFrom(context.Background(), 0, "shared-key"); err != nil || string(v) != "beta-value" {
		t.Fatalf("beta read after restart = %q, %v", v, err)
	}
	if keys, err := beta1r.ListFrom(context.Background(), 0); err != nil || len(keys) != 2 {
		t.Fatalf("beta ListFrom after restart = %v, %v", keys, err)
	}

	// The owners resume too and keep writing into their recovered
	// namespaces.
	alpha0r, err := kv.Open(alpha0c, redial(alpha0c, "alpha", 0), kv.WithChunkSize(8<<10), kv.WithTreeFanout(4, 4))
	if err != nil {
		t.Fatalf("alpha owner reopen: %v", err)
	}
	if alpha0r.Len() != 42 {
		t.Fatalf("alpha owner recovered %d keys, want 42", alpha0r.Len())
	}
	if err := alpha0r.Put(context.Background(), "post-restart", []byte("written after recovery")); err != nil {
		t.Fatal(err)
	}
	if v, err := alpha1r.GetFrom(context.Background(), 0, "post-restart"); err != nil || string(v) != "written after recovery" {
		t.Fatalf("post-restart read = %q, %v", v, err)
	}

	for name, c := range map[string]*ustor.Client{
		"alpha0": alpha0c, "alpha1": alpha1c, "beta0": beta0c, "beta1": beta1c,
	} {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %s reported failure after honest recovery: %v", name, reason)
		}
	}
}
