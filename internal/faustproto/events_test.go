package faustproto

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// These tests pin the observability contract of the protocol events:
// stable_i and fail_i notifications are mirrored into the injected
// obs.EventLog exactly once each, in a sequence consistent with the
// callbacks, with non-decreasing timestamps — on the in-memory transport
// and over real TCP.

// checkEventOrdering asserts seq strictly increases and timestamps never
// go backwards across the snapshot.
func checkEventOrdering(t *testing.T, events []obs.Event) {
	t.Helper()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event %d: seq %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatalf("event %d: time %v before predecessor %v", i, events[i].Time, events[i-1].Time)
		}
	}
}

func eventsOf(events []obs.Event, client int, kind obs.EventKind) []obs.Event {
	var out []obs.Event
	for _, e := range events {
		if e.Client == client && e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func TestStableEventsMatchCallbacks(t *testing.T) {
	// Online path, memory transport: every stable_i(W) callback has
	// exactly one stability-cut-advance event, in the same order with the
	// same cut.
	elog := obs.NewEventLog(obs.DefaultEventCap)
	var mu sync.Mutex
	cuts := make(map[int][][]int64)
	cl := newCluster(t, 3, nil, fastConfig(true), WithEventLog(elog))
	for i, c := range cl.clients {
		i := i
		c.onStable = func(w []int64) {
			mu.Lock()
			cuts[i] = append(cuts[i], append([]int64(nil), w...))
			mu.Unlock()
		}
	}
	cl.startAll()
	ts, err := cl.clients[0].Write([]byte("observe me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.clients[0].WaitStable(ts, waitLong); err != nil {
		t.Fatalf("never stable: %v", err)
	}
	// Quiesce before snapshotting: no background machinery, no new events.
	for _, c := range cl.clients {
		c.Stop()
	}

	events := elog.Snapshot()
	checkEventOrdering(t, events)
	if got := elog.Total(obs.EventFail); got != 0 {
		t.Fatalf("correct server produced %d fail events", got)
	}
	if got := elog.Total(obs.EventFork); got != 0 {
		t.Fatalf("correct server produced %d fork events", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range cl.clients {
		evs := eventsOf(events, i, obs.EventStabilityCut)
		if len(evs) != len(cuts[i]) {
			t.Fatalf("client %d: %d stability events, %d callbacks", i, len(evs), len(cuts[i]))
		}
		for k, e := range evs {
			if want := fmt.Sprintf("W=%v", cuts[i][k]); e.Detail != want {
				t.Fatalf("client %d event %d: detail %q, callback cut %q", i, k, e.Detail, want)
			}
		}
	}
	if len(eventsOf(events, 0, obs.EventStabilityCut)) == 0 {
		t.Fatal("writer advanced to stability without a single stability-cut event")
	}
}

func TestFailEventsExactlyOnce(t *testing.T) {
	// Forking server, memory transport: every client emits fail_i exactly
	// once, the event log says so too, and the client that detected the
	// fork itself logged the fork-detected evidence BEFORE its fail event.
	const n = 2
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	elog := obs.NewEventLog(obs.DefaultEventCap)
	var mu sync.Mutex
	failCalls := make(map[int]int)
	cl := newCluster(t, n, server, fastConfig(false), WithEventLog(elog))
	for i, c := range cl.clients {
		i := i
		c.onFail = func(error) {
			mu.Lock()
			failCalls[i]++
			mu.Unlock()
		}
	}
	cl.startAll()
	if _, err := cl.clients[0].Write([]byte("branch-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.clients[1].Write([]byte("branch-b")); err != nil {
		t.Fatal(err)
	}
	for i, c := range cl.clients {
		if err := c.WaitFail(waitLong); err != nil {
			t.Fatalf("client %d did not fail: %v", i, err)
		}
	}
	for _, c := range cl.clients {
		c.Stop()
	}

	events := elog.Snapshot()
	checkEventOrdering(t, events)
	mu.Lock()
	defer mu.Unlock()
	if int64(n) != elog.Total(obs.EventFail) {
		t.Fatalf("fail events = %d, want %d", elog.Total(obs.EventFail), n)
	}
	var firstFailSeq uint64
	for i := 0; i < n; i++ {
		if failCalls[i] != 1 {
			t.Fatalf("client %d: onFail called %d times", i, failCalls[i])
		}
		fails := eventsOf(events, i, obs.EventFail)
		if len(fails) != 1 {
			t.Fatalf("client %d: %d fail events, want exactly 1", i, len(fails))
		}
		if firstFailSeq == 0 || fails[0].Seq < firstFailSeq {
			firstFailSeq = fails[0].Seq
		}
	}
	// The FIRST failure in the system came from someone's own detection
	// (not a broadcast), so a fork/rollback event must precede it. Later
	// detection events may trail a client's fail (it can learn of the
	// failure via broadcast first and confirm the evidence afterwards).
	detected := false
	for _, e := range events {
		if (e.Kind == obs.EventFork || e.Kind == obs.EventRollback) && e.Seq < firstFailSeq {
			detected = true
		}
	}
	if !detected {
		t.Fatal("no fork/rollback detection event precedes the first fail event")
	}
}

// tcpCluster runs FAUST clients against a core served over real TCP.
func tcpCluster(t *testing.T, n int, core transport.ServerCore, cfg Config, opts ...Option) *cluster {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 42)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCP(ln, core)
	hub := offline.NewHub(n)
	cl := &cluster{hub: hub, clients: make([]*Client, n)}
	for i := 0; i < n; i++ {
		link, err := transport.DialTCP(ln.Addr().String(), i)
		if err != nil {
			t.Fatal(err)
		}
		allOpts := append([]Option{WithConfig(cfg)}, opts...)
		cl.clients[i] = NewClient(i, ring, signers[i], link, hub.Endpoint(i), allOpts...)
	}
	t.Cleanup(func() {
		for _, c := range cl.clients {
			c.Stop()
		}
		srv.Stop()
		hub.Stop()
	})
	return cl
}

func TestEventSemanticsOverTCP(t *testing.T) {
	// The same two contracts over a real TCP transport: stability events
	// flow with a correct server, and a forked pair fails exactly once
	// each with ordered events.
	t.Run("stable", func(t *testing.T) {
		elog := obs.NewEventLog(obs.DefaultEventCap)
		cl := tcpCluster(t, 2, ustor.NewServer(2), fastConfig(true), WithEventLog(elog))
		cl.startAll()
		ts, err := cl.clients[0].Write([]byte("over tcp"))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.clients[0].WaitStable(ts, waitLong); err != nil {
			t.Fatalf("never stable: %v", err)
		}
		for _, c := range cl.clients {
			c.Stop()
		}
		events := elog.Snapshot()
		checkEventOrdering(t, events)
		if len(eventsOf(events, 0, obs.EventStabilityCut)) == 0 {
			t.Fatal("no stability-cut event for the writer")
		}
		if elog.Total(obs.EventFail) != 0 {
			t.Fatal("spurious fail event with a correct server")
		}
	})
	t.Run("fail", func(t *testing.T) {
		const n = 2
		server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
		if err != nil {
			t.Fatal(err)
		}
		elog := obs.NewEventLog(obs.DefaultEventCap)
		cl := tcpCluster(t, n, server, fastConfig(false), WithEventLog(elog))
		cl.startAll()
		if _, err := cl.clients[0].Write([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.clients[1].Write([]byte("b")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(waitLong)
		for i, c := range cl.clients {
			if err := c.WaitFail(time.Until(deadline)); err != nil {
				t.Fatalf("client %d did not fail: %v", i, err)
			}
		}
		for _, c := range cl.clients {
			c.Stop()
		}
		events := elog.Snapshot()
		checkEventOrdering(t, events)
		if elog.Total(obs.EventFail) != n {
			t.Fatalf("fail events = %d, want %d", elog.Total(obs.EventFail), n)
		}
		for i := 0; i < n; i++ {
			if len(eventsOf(events, i, obs.EventFail)) != 1 {
				t.Fatalf("client %d: fail event not exactly-once", i)
			}
		}
	})
}
