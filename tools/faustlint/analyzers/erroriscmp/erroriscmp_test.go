package erroriscmp_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"faust/tools/faustlint/analyzers/erroriscmp"
)

func TestErrorIsCmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), erroriscmp.Analyzer, "a")
}
