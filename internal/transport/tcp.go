package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// TCP framing: every message is a 4-byte big-endian length followed by the
// canonical wire encoding. The first frame a client sends is a handshake.
//
// Two handshake versions coexist on one listener:
//
//	v1 (legacy): exactly 4 bytes carrying the client ID. The connection is
//	    bound to the default shard and receives no acknowledgment — the
//	    byte stream is identical to the pre-shard protocol, so old clients
//	    interoperate unchanged.
//	v2: a frame of magic (4 bytes) | client ID (u32) | shard name length
//	    (u16) | shard name. The server answers with one ack frame — a
//	    status byte (0 = accepted) followed by an error message when
//	    rejected — so v2 dialers fail fast on unknown shards or
//	    out-of-range IDs. v2 frames are always at least 10 bytes, so the
//	    two versions cannot be confused.
//
// The transport deliberately uses no TLS: the protocol's guarantees come
// from client-side signatures and are designed for an untrusted server —
// an attacker on the wire is no stronger than the server itself. Deploy
// behind TLS anyway if confidentiality matters; the framing is oblivious.

const maxFrame = 1 << 24 // 16 MiB per message is far beyond protocol needs

// DefaultShard is the shard name legacy (v1) handshakes bind to and the
// name under which ServeTCP registers its single core.
const DefaultShard = "default"

// helloMagic prefixes every v2 handshake frame.
var helloMagic = [4]byte{0xFA, 0x57, 'H', '2'}

// blobMagic prefixes the handshake of a bulk blob-channel connection:
// magic (4 bytes) | shard name length (u16) | shard name. The server
// answers with the same ack frame as a v2 hello. Blob connections carry
// only BLOB_* messages, served directly on the connection goroutine —
// bulk transfers never queue behind the shard dispatcher.
var blobMagic = [4]byte{0xFA, 0x57, 'B', '1'}

const (
	legacyHelloLen  = 4
	v2HelloMinLen   = 10 // magic + id + name length, before the name bytes
	maxShardNameLen = 128
)

// defaultHandshakeTimeout bounds how long an accepted connection may take
// to present its hello frame. Without a bound, a half-open connection
// would pin a goroutine forever (and, before the pre-handshake tracking
// existed, deadlock Stop).
const defaultHandshakeTimeout = 10 * time.Second

// writeFrame writes a length-prefixed frame as a single Write call so
// concurrent writers guarded by a per-connection lock can never interleave
// header and payload bytes on the stream.
func writeFrame(conn net.Conn, payload []byte) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := conn.Write(buf)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// parseHello classifies and decodes a handshake frame.
func parseHello(hello []byte) (shardName string, id int, v2 bool, err error) {
	if len(hello) == legacyHelloLen {
		return DefaultShard, int(binary.BigEndian.Uint32(hello)), false, nil
	}
	if len(hello) < v2HelloMinLen || !bytes.Equal(hello[:4], helloMagic[:]) {
		return "", 0, false, fmt.Errorf("transport: malformed handshake frame (%d bytes)", len(hello))
	}
	id = int(binary.BigEndian.Uint32(hello[4:8]))
	nameLen := int(binary.BigEndian.Uint16(hello[8:10]))
	if nameLen == 0 || nameLen > maxShardNameLen || len(hello) != v2HelloMinLen+nameLen {
		return "", 0, true, fmt.Errorf("transport: malformed v2 handshake (name length %d in %d-byte frame)", nameLen, len(hello))
	}
	return string(hello[v2HelloMinLen:]), id, true, nil
}

// ShardResolver maps the shard name from a v2 handshake (or DefaultShard
// for legacy hellos) to the server core that owns it. Implementations may
// create shards lazily; returning an error rejects the handshake with the
// error text as the v2 ack message. ResolveShard must return the same core
// for the same name for the lifetime of the server.
type ShardResolver interface {
	ResolveShard(name string) (ServerCore, error)
}

// ShardPreflight is an optional ShardResolver extension that validates a
// handshake WITHOUT instantiating the shard. When the resolver implements
// it, the server consults it before ResolveShard, so a rejected handshake
// (bad name, out-of-range id) costs nothing — in particular, a lazily
// creating resolver is never asked to materialize a shard for a
// connection that is about to be refused.
type ShardPreflight interface {
	PreflightShard(name string, id int) error
}

// staticShards is a fixed name->core resolver.
type staticShards map[string]ServerCore

func (m staticShards) ResolveShard(name string) (ServerCore, error) {
	core, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("transport: unknown shard %q", name)
	}
	return core, nil
}

// StaticShards builds a ShardResolver over a fixed shard table. The map is
// not copied; do not mutate it after the server starts.
func StaticShards(shards map[string]ServerCore) ShardResolver { return staticShards(shards) }

// TCPOption configures a TCPServer.
type TCPOption func(*TCPServer)

// WithHandshakeTimeout bounds how long an accepted connection may take to
// complete its handshake (default 10s). Connections that exceed it are
// closed; zero or negative disables the deadline (Stop still terminates
// promptly because pre-handshake connections are tracked and closed).
func WithHandshakeTimeout(d time.Duration) TCPOption {
	return func(s *TCPServer) { s.handshakeTimeout = d }
}

// WithSharedDispatcher routes every shard through one global dispatcher
// goroutine instead of one per shard, restoring the pre-shard serialization
// across tenants. It exists as the ablation baseline for the multi-shard
// scaling experiment (E17); production servers want the default. The
// batched pipeline runs here too: one drained batch may span several
// shards, each op applying against (and flushing) its own shard's core.
func WithSharedDispatcher() TCPOption {
	return func(s *TCPServer) { s.shared = true }
}

// WithTCPMaxBatch caps how many queued envelopes a dispatcher drains per
// batch (default DefaultMaxBatch); 1 disables batching entirely. Wired to
// the faust-server -max-batch flag.
func WithTCPMaxBatch(n int) TCPOption {
	return func(s *TCPServer) { s.maxBatch = n }
}

// WithVerifyKeyring arms server-side SUBMIT-signature verification with
// one ring for every shard. A resolver implementing VerifierResolver
// overrides it per shard. Admission hygiene only: the protocol's
// guarantees remain client-enforced.
func WithVerifyKeyring(ring *crypto.Keyring) TCPOption {
	return func(s *TCPServer) { s.ring = ring }
}

// VerifierResolver is an optional ShardResolver extension supplying a
// per-shard public keyring for dispatcher-side SUBMIT verification. It is
// consulted once per shard-runtime creation, after ResolveShard; nil
// means this shard falls back to the server-wide WithVerifyKeyring ring
// (or no verification).
type VerifierResolver interface {
	ResolveVerifier(name string) *crypto.Keyring
}

// writeFramedMsg frames and writes one message as a single Write call
// under the given write lock, encoding into a pooled buffer. Both
// directions of the protocol (server pushes, client sends) share it.
func writeFramedMsg(conn net.Conn, wmu *sync.Mutex, m wire.Message) error {
	buf := wire.GetBuffer()
	b := append((*buf)[:0], 0, 0, 0, 0)
	b = wire.AppendEncode(b, m)
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	wmu.Lock()
	_, err := conn.Write(b)
	wmu.Unlock()
	*buf = b // keep any growth for the pool
	wire.PutBuffer(buf)
	tmFramesOut.Inc()
	return err
}

// writeFramedMsgs frames a whole batch of messages into one pooled buffer
// and writes it with a single Write call under the connection's write
// lock — one lock round and one syscall for every reply a batch owes this
// destination.
//
//faustlint:hotpath
func writeFramedMsgs(conn net.Conn, wmu *sync.Mutex, msgs []wire.Message) error {
	if len(msgs) == 1 {
		return writeFramedMsg(conn, wmu, msgs[0])
	}
	buf := wire.GetBuffer()
	b := (*buf)[:0]
	for _, m := range msgs {
		hdr := len(b)
		b = append(b, 0, 0, 0, 0)
		b = wire.AppendEncode(b, m)
		binary.BigEndian.PutUint32(b[hdr:], uint32(len(b)-hdr-4))
	}
	wmu.Lock()
	_, err := conn.Write(b)
	wmu.Unlock()
	*buf = b // keep any growth for the pool
	wire.PutBuffer(buf)
	tmFramesOut.Add(int64(len(msgs)))
	return err
}

// serverConn wraps an accepted connection with a write lock so REPLYs from
// the dispatcher and pushes from core goroutines (lockstep timers, async
// replies) cannot interleave frames on the stream.
type serverConn struct {
	conn net.Conn
	wmu  sync.Mutex // write-serialization lock: held across conn.Write by design
}

// writeMsg frames and writes one message atomically.
func (c *serverConn) writeMsg(m wire.Message) error {
	return writeFramedMsg(c.conn, &c.wmu, m)
}

// shardRT is the per-shard runtime inside a TCPServer: the resolved core,
// its inbox (own queue per shard, or the server's shared one), the
// optional verification keyring, and the connection registry for
// push-backs. It is the TCP transport's batchSink: messages arrive in
// envelopes pointing at their shardRT, so one (possibly shared)
// dispatcher serves any number of shards.
type shardRT struct {
	name  string
	core  ServerCore
	inbox *fifo[envelope]
	ring  *crypto.Keyring
	ops   *obs.Counter // per-tenant dispatched-op counter

	mu    sync.Mutex
	conns map[int]*serverConn
}

// push delivers a server-initiated message to client `to` of this shard.
func (rt *shardRT) push(to int, m wire.Message) error {
	rt.mu.Lock()
	sc := rt.conns[to]
	rt.mu.Unlock()
	if sc == nil {
		return fmt.Errorf("transport: client %d not connected to shard %q", to, rt.name)
	}
	return sc.writeMsg(m)
}

// batchSink implementation.

func (rt *shardRT) sinkCore() ServerCore             { return rt.core }
func (rt *shardRT) sinkRing() *crypto.Keyring        { return rt.ring }
func (rt *shardRT) sinkName() string                 { return rt.name }
func (rt *shardRT) countOp()                         { rt.ops.Inc() }
func (rt *shardRT) dropUnknown()                     {}
func (rt *shardRT) sendReply(to int, m wire.Message) { _ = rt.push(to, m) }

// sendReplies writes a batch's replies for one client as a single framed
// write: one connection-lock round and one syscall per destination per
// batch instead of one per reply.
func (rt *shardRT) sendReplies(to int, msgs []wire.Message) {
	rt.mu.Lock()
	sc := rt.conns[to]
	rt.mu.Unlock()
	if sc == nil {
		return
	}
	_ = writeFramedMsgs(sc.conn, &sc.wmu, msgs)
}

// TCPServer hosts one or more server cores on a TCP listener. Each shard's
// messages are serialized through that shard's dispatcher goroutine,
// preserving the atomic event handler semantics of Algorithm 2 within the
// shard while distinct shards execute in parallel.
type TCPServer struct {
	resolver         ShardResolver
	ln               net.Listener
	handshakeTimeout time.Duration
	shared           bool
	sharedInbox      *fifo[envelope] // non-nil iff shared
	maxBatch         int
	ring             *crypto.Keyring // server-wide verification fallback

	mu        sync.Mutex
	stopped   bool
	pending   map[net.Conn]struct{} // accepted, handshake not yet complete
	blobConns map[net.Conn]struct{} // post-handshake blob-channel connections
	shards    map[string]*shardRT   // successfully created runtimes
	slots     map[string]*shardSlot // creation slots, including in-flight ones
	wg        sync.WaitGroup
}

// shardSlot tracks one shard runtime's creation so concurrent handshakes
// for the same name share a single ResolveShard call — which may do real
// work (WAL recovery) — without holding the server mutex across it.
type shardSlot struct {
	ready chan struct{} // closed once rt/err are set
	rt    *shardRT
	err   error
}

// ServeTCP starts serving a single core on ln under the default shard name
// — the legacy single-tenant deployment. It returns immediately; use Stop
// to shut down. The core's pusher (GenericCore) is attached before ServeTCP
// returns.
func ServeTCP(ln net.Listener, core ServerCore, opts ...TCPOption) *TCPServer {
	s := ServeTCPSharded(ln, StaticShards(map[string]ServerCore{DefaultShard: core}), opts...)
	// Pre-resolve the default shard so AttachPusher runs before any
	// traffic, matching the single-core server's historic behavior.
	_, _ = s.shardFor(DefaultShard)
	return s
}

// ServeTCPSharded starts serving every shard the resolver can produce.
// Shard runtimes (dispatcher goroutine, connection registry, AttachPusher)
// are created on the first handshake that names them. It returns
// immediately; use Stop to shut down.
func ServeTCPSharded(ln net.Listener, resolver ShardResolver, opts ...TCPOption) *TCPServer {
	s := &TCPServer{
		resolver:         resolver,
		ln:               ln,
		handshakeTimeout: defaultHandshakeTimeout,
		maxBatch:         DefaultMaxBatch,
		pending:          make(map[net.Conn]struct{}),
		blobConns:        make(map[net.Conn]struct{}),
		shards:           make(map[string]*shardRT),
		slots:            make(map[string]*shardSlot),
	}
	for _, o := range opts {
		o(s)
	}
	if s.shared {
		s.sharedInbox = newFIFO[envelope]()
		s.wg.Add(1)
		go s.dispatchQueue(s.sharedInbox)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// ActiveConns returns the number of post-handshake connections currently
// registered across all shards. Exposed for tests and operational
// introspection; dead connections are unregistered as soon as their read
// loop observes the failure.
func (s *TCPServer) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, rt := range s.shards {
		rt.mu.Lock()
		total += len(rt.conns)
		rt.mu.Unlock()
	}
	return total
}

// Stop closes the listener and all connections — including ones still in
// the handshake — and waits for every goroutine to exit.
func (s *TCPServer) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	conns := make([]net.Conn, 0, len(s.pending)+len(s.blobConns))
	for c := range s.pending {
		conns = append(conns, c)
	}
	for c := range s.blobConns {
		conns = append(conns, c)
	}
	rts := make([]*shardRT, 0, len(s.shards))
	for _, rt := range s.shards {
		rt.mu.Lock()
		for _, sc := range rt.conns {
			conns = append(conns, sc.conn)
		}
		rt.mu.Unlock()
		rts = append(rts, rt)
	}
	s.mu.Unlock()

	// The close syscalls run outside the state locks: stopped is set, so
	// register admits nothing new and the snapshot above is complete.
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}

	if s.sharedInbox != nil {
		s.sharedInbox.close()
	} else {
		for _, rt := range rts {
			rt.inbox.close()
		}
	}
	s.wg.Wait()
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.trackPending(conn) {
			_ = conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// trackPending registers a freshly accepted connection so Stop can close
// it even before the handshake completes. Returns false when the server is
// already stopped.
func (s *TCPServer) trackPending(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return false
	}
	s.pending[conn] = struct{}{}
	return true
}

func (s *TCPServer) dropPending(conn net.Conn) {
	s.mu.Lock()
	delete(s.pending, conn)
	s.mu.Unlock()
}

// errStopped rejects work arriving after Stop.
var errStopped = fmt.Errorf("transport: server stopped")

// shardFor returns the runtime for a shard name, creating it — dispatcher
// goroutine, connection registry, pusher attachment — on first use. The
// resolver call runs outside the server mutex (lazy persistent shards
// replay their WAL here), so handshakes, teardowns and Stop on other
// shards are never blocked behind one shard's recovery; concurrent
// handshakes for the same name share one creation via its slot.
func (s *TCPServer) shardFor(name string) (*shardRT, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, errStopped
	}
	if slot, ok := s.slots[name]; ok {
		s.mu.Unlock()
		<-slot.ready
		return slot.rt, slot.err
	}
	slot := &shardSlot{ready: make(chan struct{})}
	s.slots[name] = slot
	s.mu.Unlock()

	rt, err := s.createShard(name)
	if err != nil {
		// Drop the slot so a later handshake may retry (the failure could
		// be transient); waiters already parked on it still see the error.
		s.mu.Lock()
		delete(s.slots, name)
		s.mu.Unlock()
		slot.err = err
		close(slot.ready)
		return nil, err
	}
	slot.rt = rt
	close(slot.ready)
	return rt, nil
}

func (s *TCPServer) createShard(name string) (*shardRT, error) {
	core, err := s.resolver.ResolveShard(name)
	if err != nil {
		return nil, err
	}
	rt := &shardRT{
		name:  name,
		core:  core,
		inbox: s.sharedInbox,
		ring:  s.ring,
		ops:   shardOpsCounter(name),
		conns: make(map[int]*serverConn),
	}
	if vr, ok := s.resolver.(VerifierResolver); ok {
		if ring := vr.ResolveVerifier(name); ring != nil {
			rt.ring = ring
		}
	}
	ownInbox := rt.inbox == nil
	if ownInbox {
		rt.inbox = newFIFO[envelope]()
	}
	if gc, ok := core.(GenericCore); ok {
		gc.AttachPusher(rt.push)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, errStopped
	}
	s.shards[name] = rt
	if ownInbox {
		s.wg.Add(1)
		go s.dispatchQueue(rt.inbox)
	}
	s.mu.Unlock()
	return rt, nil
}

// checkID validates the handshake client ID against the core's group size
// when the core exposes one (an `N() int` method returning a non-negative
// count). Without the check any 32-bit ID would insert a connection map
// entry — a trivial memory-exhaustion vector.
func checkID(name string, core ServerCore, id int) error {
	if id < 0 {
		return fmt.Errorf("transport: negative client id %d", id)
	}
	if sized, ok := core.(interface{ N() int }); ok {
		if n := sized.N(); n >= 0 && id >= n {
			return fmt.Errorf("transport: client id %d out of range for shard %q (n=%d)", id, name, n)
		}
	}
	return nil
}

// writeAck sends the v2 handshake acknowledgment: status 0, or status 1
// plus the rejection reason.
func writeAck(conn net.Conn, rejection error) error {
	if rejection == nil {
		return writeFrame(conn, []byte{0})
	}
	msg := rejection.Error()
	buf := make([]byte, 1+len(msg))
	buf[0] = 1
	copy(buf[1:], msg)
	return writeFrame(conn, buf)
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	if s.handshakeTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.handshakeTimeout))
	}
	hello, err := readFrame(conn)
	if err != nil {
		s.dropPending(conn)
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	if len(hello) >= 4 && bytes.Equal(hello[:4], blobMagic[:]) {
		s.serveBlobConn(conn, hello)
		return
	}
	name, id, v2, err := parseHello(hello)
	if err != nil {
		s.dropPending(conn)
		_ = conn.Close()
		return
	}
	var rt *shardRT
	// Preflight first, when the resolver supports it: a rejected handshake
	// must not be able to force shard instantiation.
	if pf, ok := s.resolver.(ShardPreflight); ok {
		err = pf.PreflightShard(name, id)
	}
	if err == nil {
		if rt, err = s.shardFor(name); err == nil {
			err = checkID(name, rt.core, id)
		}
	}
	if v2 {
		if ackErr := writeAck(conn, err); ackErr != nil && err == nil {
			err = ackErr
		}
	}
	if err != nil {
		tmHandshakeRej.Inc()
		obs.Default().Events().Record(obs.EventPreflightReject, id, name, err.Error())
		s.dropPending(conn)
		_ = conn.Close()
		return
	}

	sc := &serverConn{conn: conn}
	if !s.register(rt, id, sc) {
		_ = conn.Close()
		return
	}
	tmHandshakeOK.Inc()
	tmConnsProto.Inc()
	defer func() {
		// Unregister only if this connection is still the current one for
		// the ID — a newer handshake may have replaced (and closed) it.
		rt.mu.Lock()
		if rt.conns[id] == sc {
			delete(rt.conns, id)
		}
		rt.mu.Unlock()
		tmConnsProto.Dec()
		_ = conn.Close()
	}()

	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		tmFramesIn.Inc()
		msg, err := wire.Decode(payload)
		if err != nil {
			return
		}
		if !rt.inbox.push(envelope{sink: rt, from: id, msg: msg, enq: traceStamp(msg)}) {
			return
		}
	}
}

// parseBlobHello decodes a blob-channel handshake frame.
func parseBlobHello(hello []byte) (shardName string, err error) {
	if len(hello) < v2HelloMinLen-4 || !bytes.Equal(hello[:4], blobMagic[:]) {
		return "", fmt.Errorf("transport: malformed blob handshake frame (%d bytes)", len(hello))
	}
	nameLen := int(binary.BigEndian.Uint16(hello[4:6]))
	if nameLen == 0 || nameLen > maxShardNameLen || len(hello) != 6+nameLen {
		return "", fmt.Errorf("transport: malformed blob handshake (name length %d in %d-byte frame)", nameLen, len(hello))
	}
	return string(hello[6:]), nil
}

// serveBlobConn runs one bulk blob-channel connection: resolve the named
// shard's blob store, ack, then serve BLOB_PUT/BLOB_GET requests directly
// on this goroutine. The caller has already read the hello frame.
func (s *TCPServer) serveBlobConn(conn net.Conn, hello []byte) {
	var bs BlobStore
	name, err := parseBlobHello(hello)
	if err == nil {
		if br, ok := s.resolver.(BlobResolver); ok {
			bs, err = br.ResolveBlobs(name)
			if err == nil && bs == nil {
				err = ErrNoBlobStore
			}
		} else {
			err = ErrNoBlobStore
		}
	}
	if ackErr := writeAck(conn, err); ackErr != nil && err == nil {
		err = ackErr
	}
	if err != nil || !s.registerBlobConn(conn) {
		if err != nil {
			tmHandshakeRej.Inc()
			obs.Default().Events().Record(obs.EventPreflightReject, -1, name, err.Error())
		}
		s.dropPending(conn)
		_ = conn.Close()
		return
	}
	tmHandshakeOK.Inc()
	tmConnsBlob.Inc()
	defer func() {
		s.mu.Lock()
		delete(s.blobConns, conn)
		s.mu.Unlock()
		tmConnsBlob.Dec()
		_ = conn.Close()
	}()

	var wmu sync.Mutex
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		tmFramesIn.Inc()
		msg, err := wire.Decode(payload)
		if err != nil {
			return
		}
		tmBlobReqs.Inc()
		resp := serveBlobMsg(bs, msg)
		if resp == nil {
			return // non-blob message on a blob connection: protocol error
		}
		if err := writeFramedMsg(conn, &wmu, resp); err != nil {
			return
		}
	}
}

// registerBlobConn moves a connection from the pending set into the blob
// registry so Stop closes it. Returns false when the server stopped.
func (s *TCPServer) registerBlobConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, conn)
	if s.stopped {
		return false
	}
	s.blobConns[conn] = struct{}{}
	return true
}

// register atomically moves a connection from the pending set into its
// shard's registry, closing any previous connection with the same ID. It
// holds s.mu across both steps so Stop can never observe a connection in
// neither set. Returns false when the server stopped meanwhile.
func (s *TCPServer) register(rt *shardRT, id int, sc *serverConn) bool {
	s.mu.Lock()
	delete(s.pending, sc.conn)
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	rt.mu.Lock()
	old, dup := rt.conns[id]
	rt.conns[id] = sc
	rt.mu.Unlock()
	s.mu.Unlock()
	if dup {
		// The superseded connection is out of the registry, so nothing else
		// writes to it — its close syscall needs no lock.
		_ = old.conn.Close()
	}
	return true
}

// dispatchQueue is a shard's event loop (or the global one under
// WithSharedDispatcher): the shared batched engine over this inbox.
// Handlers still run one at a time in arrival order.
func (s *TCPServer) dispatchQueue(q *fifo[envelope]) {
	defer s.wg.Done()
	dispatchBatches(q, s.maxBatch)
}

// tcpLink is the client-side Link over one TCP connection.
type tcpLink struct {
	conn net.Conn
	wmu  sync.Mutex
	rmu  sync.Mutex
}

var _ Link = (*tcpLink)(nil)

// DialTCP connects client id to a TCPServer at addr with the legacy (v1)
// handshake, binding the connection to the server's default shard. The
// server sends no acknowledgment; a rejected ID (out of the shard's range)
// surfaces as an error on the first Recv.
func DialTCP(addr string, id int) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	var hello [legacyHelloLen]byte
	binary.BigEndian.PutUint32(hello[:], uint32(id))
	if err := writeFrame(conn, hello[:]); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return &tcpLink{conn: conn}, nil
}

// DialTCPShard connects client id to the named shard of a TCPServer at
// addr with the v2 handshake and waits for the server's acknowledgment, so
// unknown shards and out-of-range IDs fail here rather than on the first
// operation. An empty shard name dials the default shard.
func DialTCPShard(addr, shard string, id int) (Link, error) {
	if shard == "" {
		shard = DefaultShard
	}
	if len(shard) > maxShardNameLen {
		return nil, fmt.Errorf("transport: shard name %d bytes long, limit %d", len(shard), maxShardNameLen)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	hello := make([]byte, 0, v2HelloMinLen+len(shard))
	hello = append(hello, helloMagic[:]...)
	hello = binary.BigEndian.AppendUint32(hello, uint32(id))
	hello = binary.BigEndian.AppendUint16(hello, uint16(len(shard)))
	hello = append(hello, shard...)
	if err := writeFrame(conn, hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	ack, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake ack: %w", err)
	}
	if len(ack) < 1 {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: empty handshake ack")
	}
	if ack[0] != 0 {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: server rejected handshake: %s", ack[1:])
	}
	return &tcpLink{conn: conn}, nil
}

// DialTCPBlob opens a bulk blob channel to the named shard of a
// TCPServer at addr. The server must host a blob store for the shard (a
// resolver implementing BlobResolver); otherwise the handshake is
// rejected with the reason. An empty shard name targets the default
// shard. The channel is safe for concurrent use and pipelines concurrent
// requests over the one connection: each carries a request ID, responses
// are matched as they arrive, so a batch of fetches from several
// goroutines pays one round trip rather than one per blob.
func DialTCPBlob(addr, shard string) (BlobChannel, error) {
	if shard == "" {
		shard = DefaultShard
	}
	if len(shard) > maxShardNameLen {
		return nil, fmt.Errorf("transport: shard name %d bytes long, limit %d", len(shard), maxShardNameLen)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	hello := make([]byte, 0, 6+len(shard))
	hello = append(hello, blobMagic[:]...)
	hello = binary.BigEndian.AppendUint16(hello, uint16(len(shard)))
	hello = append(hello, shard...)
	if err := writeFrame(conn, hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: blob handshake: %w", err)
	}
	ack, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: blob handshake ack: %w", err)
	}
	if len(ack) < 1 {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: empty blob handshake ack")
	}
	if ack[0] != 0 {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: server rejected blob channel: %s", ack[1:])
	}
	c := &tcpBlobChannel{conn: conn, pending: make(map[uint32]chan wire.Message)}
	go c.readLoop()
	return c, nil
}

// tcpBlobChannel is the client side of one blob-channel connection, with
// request pipelining: any number of requests may be in flight at once,
// each tagged with a connection-local ID. A single reader goroutine
// demultiplexes responses to their waiting callers by ID, so concurrent
// fetches share the connection without serializing on round trips.
type tcpBlobChannel struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan wire.Message // in-flight requests by ID
	err     error                        // sticky; set once the reader dies
}

var _ BlobChannel = (*tcpBlobChannel)(nil)

// readLoop is the demultiplexer: it reads response frames until the
// connection dies and hands each to the caller waiting on its request ID.
func (c *tcpBlobChannel) readLoop() {
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("transport: blob recv: %w", err))
			return
		}
		m, err := wire.Decode(payload)
		if err != nil {
			c.fail(fmt.Errorf("transport: blob decode: %w", err))
			return
		}
		var id uint32
		switch resp := m.(type) {
		case *wire.BlobAck:
			id = resp.ID
		case *wire.BlobData:
			id = resp.ID
		default:
			c.fail(fmt.Errorf("transport: blob channel answered with a %T", m))
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch == nil {
			// A response for a request nobody is waiting on: the server
			// is confused or malicious; the channel is unusable.
			c.fail(fmt.Errorf("transport: blob response for unknown request id %d", id))
			return
		}
		ch <- m
	}
}

// fail poisons the channel: the sticky error is recorded and every
// in-flight caller is released with it (closed channel). The sticky
// error wraps ErrBlobChannelBroken so redialing wrappers can recognize
// connection-level death.
func (c *tcpBlobChannel) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = fmt.Errorf("%w: %v", ErrBlobChannelBroken, err)
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	_ = c.conn.Close()
}

// roundTrip registers a request ID, sends the message build(id) produces,
// and blocks until the reader delivers the matching response. Other
// callers' requests proceed concurrently.
func (c *tcpBlobChannel) roundTrip(build func(id uint32) wire.Message) (wire.Message, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan wire.Message, 1)
	c.pending[id] = ch
	c.mu.Unlock()
	tmBlobInflight.Inc()
	defer tmBlobInflight.Dec()

	if err := writeFramedMsg(c.conn, &c.wmu, build(id)); err != nil {
		c.mu.Lock()
		if c.pending[id] == ch {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		// A failed frame write means the connection is gone; tag it so a
		// redialing wrapper knows a fresh dial may succeed.
		return nil, fmt.Errorf("transport: blob send: %w: %v", ErrBlobChannelBroken, err)
	}
	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	return m, nil
}

// PutBlob implements BlobChannel. The request carries ctx's trace
// context so the server's store spans join the operation's trace; the
// round trip itself is recorded as a blob.rpc span.
func (c *tcpBlobChannel) PutBlob(ctx context.Context, hash, data []byte) error {
	if err := checkBlobSizes(hash, data); err != nil {
		return err
	}
	ctx, h := trace.Child(ctx, spanBlobRPC)
	defer h.End()
	tc := WireTrace(ctx)
	m, err := c.roundTrip(func(id uint32) wire.Message {
		return &wire.BlobPut{ID: id, Hash: hash, Data: data, Trace: tc}
	})
	if err != nil {
		return err
	}
	ack, ok := m.(*wire.BlobAck)
	if !ok || !bytes.Equal(ack.Hash, hash) {
		return fmt.Errorf("transport: blob put answered with a mismatched %T", m)
	}
	if !ack.OK {
		return fmt.Errorf("transport: blob put rejected: %s", ack.Msg)
	}
	return nil
}

// GetBlob implements BlobChannel.
func (c *tcpBlobChannel) GetBlob(ctx context.Context, hash []byte) ([]byte, error) {
	ctx, h := trace.Child(ctx, spanBlobRPC)
	defer h.End()
	tc := WireTrace(ctx)
	m, err := c.roundTrip(func(id uint32) wire.Message {
		return &wire.BlobGet{ID: id, Hash: hash, Trace: tc}
	})
	if err != nil {
		return nil, err
	}
	// A server-side store failure (not a missing blob) arrives as an
	// error ack; keep it distinct from not-found.
	if ack, ok := m.(*wire.BlobAck); ok && bytes.Equal(ack.Hash, hash) && !ack.OK {
		return nil, fmt.Errorf("transport: blob get failed at the server: %s", ack.Msg)
	}
	data, ok := m.(*wire.BlobData)
	if !ok || !bytes.Equal(data.Hash, hash) {
		return nil, fmt.Errorf("transport: blob get answered with a mismatched %T", m)
	}
	if !data.Found {
		return nil, errBlobNotFound(hash)
	}
	return data.Data, nil
}

// Close implements BlobChannel.
func (c *tcpBlobChannel) Close() error { return c.conn.Close() }

// Send implements Link. The frame is built in a pooled buffer and written
// with a single Write call under the link's write lock.
func (l *tcpLink) Send(m wire.Message) error {
	if err := writeFramedMsg(l.conn, &l.wmu, m); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Recv implements Link.
func (l *tcpLink) Recv() (wire.Message, error) {
	l.rmu.Lock()
	defer l.rmu.Unlock()
	payload, err := readFrame(l.conn)
	if err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	m, err := wire.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return m, nil
}

// Close implements Link.
func (l *tcpLink) Close() error { return l.conn.Close() }
