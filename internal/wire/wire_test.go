package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"faust/internal/version"
)

func sampleVersion(n int, seed int64) version.Version {
	rng := rand.New(rand.NewSource(seed))
	v := version.New(n)
	for i := 0; i < n; i++ {
		v.V[i] = int64(rng.Intn(100))
		if rng.Intn(3) > 0 {
			d := make([]byte, 32)
			rng.Read(d)
			v.M[i] = d
		}
	}
	return v
}

func sampleSignedVersion(n int, seed int64) SignedVersion {
	rng := rand.New(rand.NewSource(seed))
	sig := make([]byte, 64)
	rng.Read(sig)
	return SignedVersion{Committer: int(seed) % n, Ver: sampleVersion(n, seed), Sig: sig}
}

func sampleInvocation(seed int64) Invocation {
	rng := rand.New(rand.NewSource(seed))
	sig := make([]byte, 64)
	rng.Read(sig)
	op := OpRead
	if seed%2 == 0 {
		op = OpWrite
	}
	return Invocation{Client: rng.Intn(8), Op: op, Reg: rng.Intn(8), SubmitSig: sig}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data := Encode(m)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%T): %v", m, err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
	}
	return got
}

func TestSubmitRoundTrip(t *testing.T) {
	roundTrip(t, &Submit{
		T:       42,
		Inv:     sampleInvocation(1),
		Value:   []byte("the value"),
		DataSig: bytes.Repeat([]byte{7}, 64),
	})
}

func TestSubmitRoundTripNilValue(t *testing.T) {
	// Reads carry no value; nil must survive the codec (not become empty).
	m := &Submit{T: 1, Inv: sampleInvocation(2), Value: nil, DataSig: bytes.Repeat([]byte{1}, 64)}
	got := roundTrip(t, m).(*Submit)
	if got.Value != nil {
		t.Fatal("nil Value decoded as non-nil")
	}
}

func TestReplyWriteRoundTrip(t *testing.T) {
	roundTrip(t, &Reply{
		IsRead: false,
		C:      3,
		CVer:   sampleSignedVersion(4, 5),
		L:      []Invocation{sampleInvocation(6), sampleInvocation(7)},
		P:      [][]byte{nil, []byte("proof1"), nil, []byte("proof3")},
	})
}

func TestReplyReadRoundTrip(t *testing.T) {
	roundTrip(t, &Reply{
		IsRead: true,
		C:      0,
		CVer:   sampleSignedVersion(4, 8),
		JVer:   sampleSignedVersion(4, 9),
		Mem:    MemEntry{T: 17, Value: []byte("v"), DataSig: bytes.Repeat([]byte{2}, 64)},
		L:      []Invocation{},
		P:      [][]byte{nil, nil, nil, nil},
	})
}

func TestReplyZeroVersionRoundTrip(t *testing.T) {
	roundTrip(t, &Reply{
		IsRead: false,
		C:      0,
		CVer:   ZeroSignedVersion(3),
		L:      []Invocation{},
		P:      [][]byte{nil, nil, nil},
	})
}

func TestCommitRoundTrip(t *testing.T) {
	roundTrip(t, &Commit{
		Ver:       sampleVersion(5, 11),
		CommitSig: bytes.Repeat([]byte{3}, 64),
		ProofSig:  bytes.Repeat([]byte{4}, 64),
	})
}

func TestProbeRoundTrip(t *testing.T) {
	roundTrip(t, &Probe{From: 2})
}

func TestVersionMsgRoundTrip(t *testing.T) {
	roundTrip(t, &VersionMsg{From: 1, SV: sampleSignedVersion(3, 13)})
}

func TestFailureRoundTrip(t *testing.T) {
	roundTrip(t, &Failure{From: 0})
	roundTrip(t, &Failure{
		From:        2,
		HasEvidence: true,
		EvidenceA:   sampleSignedVersion(3, 14),
		EvidenceB:   sampleSignedVersion(3, 15),
	})
}

func TestZeroSignedVersion(t *testing.T) {
	sv := ZeroSignedVersion(4)
	if sv.Committer != -1 || sv.Sig != nil || !sv.Ver.IsZero() || sv.Ver.N() != 4 {
		t.Fatalf("bad zero signed version: %+v", sv)
	}
	roundTrip(t, &VersionMsg{From: 0, SV: sv})
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                                  // unknown kind
		{byte(KindProbe)},                     // truncated body
		append(Encode(&Probe{From: 1}), 0xEE), // trailing garbage
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	full := Encode(&Reply{
		IsRead: true,
		C:      1,
		CVer:   sampleSignedVersion(3, 20),
		JVer:   sampleSignedVersion(3, 21),
		Mem:    MemEntry{T: 5, Value: []byte("x"), DataSig: bytes.Repeat([]byte{9}, 64)},
		L:      []Invocation{sampleInvocation(22)},
		P:      [][]byte{nil, []byte("p"), nil},
	})
	for cut := 1; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsHugeVector(t *testing.T) {
	// A malicious length prefix must not cause a huge allocation.
	buf := []byte{byte(KindCommit)}
	buf = appendU32(buf, 1<<30) // absurd version dimension
	if _, err := Decode(buf); err == nil {
		t.Fatal("huge vector length accepted")
	}
}

func TestOpCodeString(t *testing.T) {
	if OpRead.String() != "READ" || OpWrite.String() != "WRITE" {
		t.Fatal("OpCode.String wrong")
	}
	if OpCode(0).String() == "READ" {
		t.Fatal("zero OpCode must not be READ")
	}
}

func TestSubmitPayloadInjective(t *testing.T) {
	seen := map[string]string{}
	add := func(name string, p []byte) {
		if prev, ok := seen[string(p)]; ok {
			t.Fatalf("payload collision between %s and %s", prev, name)
		}
		seen[string(p)] = name
	}
	add("read-0-1", SubmitPayload(OpRead, 0, 1, nil))
	add("write-0-1", SubmitPayload(OpWrite, 0, 1, nil))
	add("read-1-1", SubmitPayload(OpRead, 1, 1, nil))
	add("read-0-2", SubmitPayload(OpRead, 0, 2, nil))
	tc := &TraceCtx{Span: 1}
	tc.ID[0] = 0xfa
	add("read-0-1-traced", SubmitPayload(OpRead, 0, 1, tc))
	tc2 := &TraceCtx{Span: 2}
	tc2.ID[0] = 0xfa
	add("read-0-1-traced-span2", SubmitPayload(OpRead, 0, 1, tc2))
}

func TestDataPayloadBottomVsHash(t *testing.T) {
	a := DataPayload(1, nil)
	b := DataPayload(1, []byte{})
	if bytes.Equal(a, b) {
		t.Fatal("bottom xbar and empty xbar must differ")
	}
	c := DataPayload(2, nil)
	if bytes.Equal(a, c) {
		t.Fatal("timestamp must be covered")
	}
}

func TestCommitPayloadMatchesCanonicalBytes(t *testing.T) {
	v := sampleVersion(3, 33)
	if !bytes.Equal(CommitPayload(v), v.CanonicalBytes()) {
		t.Fatal("CommitPayload must equal the canonical version encoding")
	}
}

func TestSignedVersionClone(t *testing.T) {
	sv := sampleSignedVersion(3, 40)
	c := sv.Clone()
	c.Sig[0] ^= 0xFF
	c.Ver.V[0] = 999
	if sv.Sig[0] == c.Sig[0] || sv.Ver.V[0] == 999 {
		t.Fatal("Clone shares memory")
	}
}

func TestMemEntryClone(t *testing.T) {
	m := MemEntry{T: 1, Value: []byte("v"), DataSig: []byte("s")}
	c := m.Clone()
	c.Value[0] = 'x'
	c.DataSig[0] = 'y'
	if m.Value[0] != 'v' || m.DataSig[0] != 's' {
		t.Fatal("Clone shares memory")
	}
	nilClone := (MemEntry{T: 2}).Clone()
	if nilClone.Value != nil || nilClone.DataSig != nil {
		t.Fatal("nil fields must stay nil")
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	m := &Commit{Ver: sampleVersion(4, 50), CommitSig: []byte("c"), ProofSig: []byte("p")}
	if EncodedSize(m) != len(Encode(m)) {
		t.Fatal("EncodedSize disagrees with Encode")
	}
}

// Property: random replies round-trip through the codec.
func TestQuickReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		rp := &Reply{
			IsRead: rng.Intn(2) == 0,
			C:      rng.Intn(n),
			CVer:   sampleSignedVersion(n, rng.Int63()),
			L:      make([]Invocation, rng.Intn(4)),
			P:      make([][]byte, n),
		}
		for i := range rp.L {
			rp.L[i] = sampleInvocation(rng.Int63())
		}
		for i := range rp.P {
			if rng.Intn(2) == 0 {
				rp.P[i] = []byte{byte(i)}
			}
		}
		if rp.IsRead {
			rp.JVer = sampleSignedVersion(n, rng.Int63())
			rp.Mem = MemEntry{T: rng.Int63n(100), Value: []byte("v"), DataSig: []byte("d")}
		}
		roundTrip(t, rp)
	}
}

// Property: encoding is deterministic.
func TestQuickEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for iter := 0; iter < 100; iter++ {
		m := &Commit{
			Ver:       sampleVersion(1+rng.Intn(5), rng.Int63()),
			CommitSig: []byte("sig"),
			ProofSig:  []byte("proof"),
		}
		if !bytes.Equal(Encode(m), Encode(m)) {
			t.Fatal("encoding not deterministic")
		}
	}
}
