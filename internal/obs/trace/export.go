package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Export surface. Nothing here is a hot path — fmt and encoding/json
// are fine; the zero-alloc discipline applies to the record path only.

// traceEvent is one Chrome trace_event in the JSON Array Format that
// Perfetto and chrome://tracing load: a complete ("X") event with
// microsecond timestamps.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteTraceEvents writes every retained trace as Chrome trace_event
// JSON ({"traceEvents": [...]}). Each trace gets its own tid lane and a
// thread_name metadata record carrying its hex ID, so Perfetto shows
// one named track per trace with the spans nested by time containment.
func (c *Collector) WriteTraceEvents(w io.Writer) error {
	c.Sweep()
	traces := c.Snapshot()
	events := make([]traceEvent, 0, 64)
	for tid, t := range traces {
		events = append(events, traceEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 1, Tid: tid + 1,
			Args: map[string]string{"name": "trace " + t.ID.String()},
		})
		for _, s := range t.Spans {
			events = append(events, traceEvent{
				Name: s.Name,
				Cat:  "faust",
				Ph:   "X",
				Ts:   float64(s.Start) / 1e3,
				Dur:  float64(s.Dur) / 1e3,
				Pid:  1,
				Tid:  tid + 1,
				Args: map[string]string{
					"trace":  t.ID.String(),
					"span":   strconv.FormatUint(uint64(s.ID), 16),
					"parent": strconv.FormatUint(uint64(s.Parent), 16),
				},
			})
		}
	}
	payload := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		Dropped     uint64       `json:"droppedTraces,omitempty"`
	}{TraceEvents: events, Dropped: c.Dropped()}
	enc := json.NewEncoder(w)
	return enc.Encode(payload)
}

// WriteTree renders the trace as an indented span tree with durations
// and offsets from the trace start — the REPL `trace` command and
// /trace/slowest format.
func (t *Trace) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "trace %s  %s  %d spans\n",
		t.ID.String(), time.Duration(t.Dur), len(t.Spans))
	children := make(map[SpanID][]int, len(t.Spans))
	ids := make(map[SpanID]bool, len(t.Spans))
	for i := range t.Spans {
		ids[t.Spans[i].ID] = true
	}
	var roots []int
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Parent != 0 && ids[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			// Orphans (parent span lives in the peer process) print as
			// roots — over TCP each side holds half the tree.
			roots = append(roots, i)
		}
	}
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := &t.Spans[idx]
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%-24s %12s  @+%s\n",
			s.Name, time.Duration(s.Dur), time.Duration(s.Start-t.Start))
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// WriteSlowest renders the n slowest retained traces as span trees.
func (c *Collector) WriteSlowest(w io.Writer, n int) {
	c.Sweep()
	traces := c.Slowest(n)
	if len(traces) == 0 {
		io.WriteString(w, "no retained traces\n")
		return
	}
	for i, t := range traces {
		if i > 0 {
			io.WriteString(w, "\n")
		}
		t.WriteTree(w)
	}
}
