package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"faust/internal/wire"
)

// appendN opens dir, appends n records (T = 0..n-1) and closes again.
func appendN(t *testing.T, dir string, n int) {
	t.Helper()
	b, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Append(submitRecord(0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// loadTail opens dir and returns the recovered snapshot and tail.
func loadTail(t *testing.T, dir string) ([]byte, []Record) {
	t.Helper()
	b, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })
	snap, tail, err := b.Load()
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	return snap, tail
}

func walPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no WAL segment found")
	return ""
}

// TestCrashTornFinalRecord is the crash-injection test: a WAL cut mid-way
// through its final record must recover to exactly the preceding records —
// no panic, no error, no corrupted state.
func TestCrashTornFinalRecord(t *testing.T) {
	const n = 6
	for _, cut := range []int64{1, 3, frameHeader - 1, frameHeader + 1} {
		dir := t.TempDir()
		appendN(t, dir, n)
		path := walPath(t, dir)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Cut inside the final record: fully losing it needs size-(header+payload),
		// so any cut strictly between leaves a torn fragment.
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		_, tail := loadTail(t, dir)
		if len(tail) != n-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(tail), n-1)
		}
		for i, rec := range tail {
			if rec.Msg.(*wire.Submit).T != int64(i) {
				t.Fatalf("cut=%d: record %d has T=%d", cut, i, rec.Msg.(*wire.Submit).T)
			}
		}
	}
}

// TestCrashTornTailTruncatedForAppend checks that recovery physically
// removes the torn bytes so post-recovery appends produce a clean log.
func TestCrashTornTailTruncatedForAppend(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 4)
	path := walPath(t, dir)
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	b, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, tail, err := b.Load(); err != nil || len(tail) != 3 {
		t.Fatalf("Load = %d records, %v; want 3", len(tail), err)
	}
	if err := b.Append(submitRecord(0, 77)); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()

	_, tail := loadTail(t, dir)
	if len(tail) != 4 || tail[3].Msg.(*wire.Submit).T != 77 {
		t.Fatalf("after append-over-torn-tail: %d records", len(tail))
	}
}

// TestCrashCorruptRecordDropsTail: a flipped bit mid-log fails the CRC and
// recovery keeps only the prefix before it.
func TestCrashCorruptRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5)
	path := walPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte inside the third record: skip magic, walk two
	// frames, then step past the next header.
	off := int64(len(walMagic))
	for i := 0; i < 2; i++ {
		length := int64(data[off])<<24 | int64(data[off+1])<<16 | int64(data[off+2])<<8 | int64(data[off+3])
		off += frameHeader + length
	}
	data[off+frameHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, tail := loadTail(t, dir)
	if len(tail) != 2 {
		t.Fatalf("recovered %d records after mid-log corruption, want 2", len(tail))
	}
}

// TestCrashTornSnapshotFallsBack: a corrupted newest snapshot must not
// take the store down — recovery falls back to the previous generation.
func TestCrashTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	stateA := []byte("generation-one")
	if err := b.WriteSnapshot(stateA); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(submitRecord(0, 5)); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()

	// Simulate a rotation that tore the second snapshot: a higher-numbered
	// snapshot file exists but fails validation.
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), []byte("FAUSTSNPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, tail := loadTail(t, dir)
	if !bytes.Equal(snap, stateA) {
		t.Fatalf("fell back to %q, want %q", snap, stateA)
	}
	if len(tail) != 1 {
		t.Fatalf("tail = %d records, want 1", len(tail))
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(2))); !os.IsNotExist(err) {
		t.Fatal("corrupt orphan snapshot not cleaned up")
	}
}

// TestSnapshotRotationReclaimsLog: after a snapshot, old segments are gone
// and recovery needs only the new baseline.
func TestSnapshotRotationReclaimsLog(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Append(submitRecord(0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.WriteSnapshot([]byte("baseline")); err != nil {
		t.Fatal(err)
	}
	if g := b.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	_ = b.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // snap-00000001 + wal-00000001.log
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not reclaimed: %v", names)
	}
	snap, tail := loadTail(t, dir)
	if !bytes.Equal(snap, []byte("baseline")) || len(tail) != 0 {
		t.Fatalf("post-rotation recovery: snap=%q tail=%d", snap, len(tail))
	}
}

// TestRollbackWAL exercises the attack tooling itself: a framing-clean
// truncation that recovery accepts without complaint.
func TestRollbackWAL(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 8)
	remaining, err := RollbackWAL(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 5 {
		t.Fatalf("remaining = %d, want 5", remaining)
	}
	_, tail := loadTail(t, dir)
	if len(tail) != 5 {
		t.Fatalf("recovered %d records after rollback, want 5", len(tail))
	}
	// Dropping more records than exist empties the log without error.
	if remaining, err = RollbackWAL(dir, 99); err != nil || remaining != 0 {
		t.Fatalf("over-drop: remaining=%d err=%v", remaining, err)
	}
}

// TestGroupCommitBackendContract runs the generic Backend contract against
// the group-commit configuration: buffering must be invisible through the
// Append/Flush/Close/Load API.
func TestGroupCommitBackendContract(t *testing.T) {
	dir := t.TempDir()
	backendContract(t, func(t *testing.T) Backend {
		b, err := OpenFile(dir, FileOptions{Fsync: true, GroupCommit: true})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return b
	})
}

// TestGroupCommitCrashRecovery simulates a crash of a group-commit backend
// (no Close, so the segment keeps its preallocated zero padding) and
// checks that recovery keeps exactly the flushed records, drops the
// padding, and that RollbackWAL counts only real records on the padded
// file.
func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, FileOptions{Fsync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Append(submitRecord(0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Unflushed tail record: a crash must lose it (and only it).
	if err := b.Append(submitRecord(0, 99)); err != nil {
		t.Fatal(err)
	}

	path := walPath(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != preallocChunk {
		t.Fatalf("flushed segment size = %d, want preallocated %d", info.Size(), preallocChunk)
	}
	if remaining, err := RollbackWAL(dir, 1); err != nil || remaining != 2 {
		t.Fatalf("RollbackWAL on padded segment: remaining=%d err=%v, want 2", remaining, err)
	}
	// Crash: abandon b without Close and recover from the directory.
	_, tail := loadTail(t, dir)
	if len(tail) != 2 {
		t.Fatalf("recovered %d records, want 2 (3 flushed - 1 rolled back; buffered record dropped)", len(tail))
	}
	for i, rec := range tail {
		if rec.Msg.(*wire.Submit).T != int64(i) {
			t.Fatalf("record %d has T=%d", i, rec.Msg.(*wire.Submit).T)
		}
	}
}

// TestGroupCommitBackgroundFlush checks that the interval flusher makes a
// lingering buffered record durable without any explicit Flush.
func TestGroupCommitBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, FileOptions{GroupCommit: true, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(submitRecord(0, 7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := os.ReadFile(walPath(t, dir))
		if err == nil && len(data) >= len(walMagic) && string(data[:len(walMagic)]) == walMagic {
			if recs, _ := scanRecords(data, true); len(recs) == 1 && recs[0].Msg.(*wire.Submit).T == 7 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher did not persist the buffered record")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFsyncModeWorks smoke-tests the fsync path end to end.
func TestFsyncModeWorks(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, FileOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(submitRecord(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(submitRecord(0, 2)); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()
	snap, tail := loadTail(t, dir)
	if !bytes.Equal(snap, []byte("s")) || len(tail) != 1 {
		t.Fatalf("fsync recovery: snap=%q tail=%d", snap, len(tail))
	}
}
