// Package crypto provides the cryptographic substrate of the FAUST
// reproduction: collision-resistant hashing, digital signatures with
// domain separation, and keyrings holding the public keys of all clients.
//
// The paper (Section 2) assumes a collision-resistant hash function H and
// a digital signature scheme where only client C_i can sign as C_i and
// every party can verify. We instantiate H with SHA-256 and signatures
// with Ed25519 from the Go standard library.
package crypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	mathrand "math/rand/v2"
	"sync"

	"faust/internal/obs"
)

// HashSize is the size in bytes of hash values produced by Hash.
const HashSize = sha256.Size

// Domain tags separate the four signature kinds of Algorithm 1 so that a
// signature issued for one purpose can never verify for another.
const (
	DomainSubmit byte = 1 // SUBMIT-signature sigma on (opcode, register, timestamp)
	DomainData   byte = 2 // DATA-signature delta on (timestamp, value hash)
	DomainCommit byte = 3 // COMMIT-signature phi on a version (V, M)
	DomainProof  byte = 4 // PROOF-signature psi on M[i]
	// DomainLSChain is used by the lock-step baseline protocol for
	// signatures over its global hash chain.
	DomainLSChain byte = 5
)

// scratchPool recycles the concatenation / domain-prefix buffers used by
// Hash, Sign and Verify so the steady-state hot path performs no heap
// allocation beyond the returned digest or signature.
var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Signature timing feeds the observability layer: Ed25519 dominates the
// client-side cost of every USTOR operation (Section 6 measures exactly
// this), so per-call histograms make the crypto share of op latency
// visible on /metrics wherever signing or verification happens.
var (
	signNs   = obs.Default().Histogram("faust_ed25519_sign_ns")
	verifyNs = obs.Default().Histogram("faust_ed25519_verify_ns")
)

// Hash returns the SHA-256 digest of the concatenation of the given byte
// slices. The digest is computed with a stack [32]byte sum (sha256.Sum256)
// over a pooled concatenation buffer; the only allocation is the returned
// 32-byte slice.
func Hash(parts ...[]byte) []byte {
	return HashInto(nil, parts...)
}

// HashInto appends the SHA-256 digest of the concatenation of parts to dst
// and returns the extended slice. With a dst of sufficient capacity the
// call is allocation-free. The digest is fully computed before dst is
// written, so dst[:0] may alias one of the parts.
func HashInto(dst []byte, parts ...[]byte) []byte {
	if len(parts) == 1 {
		sum := sha256.Sum256(parts[0])
		return append(dst, sum[:]...)
	}
	bp := scratchPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for _, p := range parts {
		buf = append(buf, p...)
	}
	sum := sha256.Sum256(buf)
	*bp = buf
	scratchPool.Put(bp)
	return append(dst, sum[:]...)
}

// HashOrNil returns nil when x is nil (the paper's bottom value) and
// Hash(x) otherwise. The initial value of every register is bottom, and
// the DATA-signature of a client that has never written covers bottom
// rather than the hash of an empty string; this helper keeps signer and
// verifier consistent.
func HashOrNil(x []byte) []byte {
	if x == nil {
		return nil
	}
	return Hash(x)
}

// HashValue is a convenience alias of Hash for a single slice.
func HashValue(x []byte) []byte { return Hash(x) }

// Signer holds a client's private key and can issue signatures in its
// name. The zero value is unusable; construct via GenerateKeyring or
// NewTestKeyring.
type Signer struct {
	id  int
	key ed25519.PrivateKey
}

// ID returns the client index this signer signs for.
func (s *Signer) ID() int { return s.id }

// Sign produces a signature over the given domain-separated payload. The
// domain-prefixed message is assembled in a pooled scratch buffer, so the
// only allocation is the returned signature.
func (s *Signer) Sign(domain byte, payload []byte) []byte {
	bp := scratchPool.Get().(*[]byte)
	msg := append((*bp)[:0], domain)
	msg = append(msg, payload...)
	start := obs.StartTimer()
	sig := ed25519.Sign(s.key, msg)
	signNs.ObserveSince(start)
	*bp = msg
	scratchPool.Put(bp)
	return sig
}

// Keyring holds the public keys of all n clients and, optionally, the
// private key of one of them. All parties (clients and the server, if it
// chose to verify) share the same public keyring.
type Keyring struct {
	pubs []ed25519.PublicKey
}

// N returns the number of clients the keyring covers.
func (k *Keyring) N() int { return len(k.pubs) }

// Verify checks a signature supposedly issued by client i over the given
// domain-separated payload. It returns false for out-of-range client
// indices and malformed signatures rather than panicking: in this protocol
// a bad signature is evidence of misbehavior, not a programming error.
func (k *Keyring) Verify(i int, sig []byte, domain byte, payload []byte) bool {
	if i < 0 || i >= len(k.pubs) {
		return false
	}
	if len(sig) != ed25519.SignatureSize {
		return false
	}
	bp := scratchPool.Get().(*[]byte)
	msg := append((*bp)[:0], domain)
	msg = append(msg, payload...)
	start := obs.StartTimer()
	ok := ed25519.Verify(k.pubs[i], msg, sig)
	verifyNs.ObserveSince(start)
	*bp = msg
	scratchPool.Put(bp)
	return ok
}

// GenerateKeyring creates a fresh keyring for n clients with cryptographic
// randomness and returns it together with the n signers.
func GenerateKeyring(n int) (*Keyring, []*Signer, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("crypto: keyring size must be positive, got %d", n)
	}
	ring := &Keyring{pubs: make([]ed25519.PublicKey, n)}
	signers := make([]*Signer, n)
	for i := 0; i < n; i++ {
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, nil, fmt.Errorf("crypto: generating key %d: %w", i, err)
		}
		ring.pubs[i] = pub
		signers[i] = &Signer{id: i, key: priv}
	}
	return ring, signers, nil
}

// NewTestKeyring creates a deterministic keyring for n clients derived
// from the given seed. It is intended for tests and benchmarks where
// reproducibility matters; the keys are NOT secure.
func NewTestKeyring(n int, seed int64) (*Keyring, []*Signer) {
	if n <= 0 {
		panic(fmt.Sprintf("crypto: test keyring size must be positive, got %d", n))
	}
	rng := mathrand.New(mathrand.NewPCG(uint64(seed), uint64(seed)^0x9e3779b97f4a7c15))
	ring := &Keyring{pubs: make([]ed25519.PublicKey, n)}
	signers := make([]*Signer, n)
	for i := 0; i < n; i++ {
		seedBytes := make([]byte, ed25519.SeedSize)
		for j := range seedBytes {
			seedBytes[j] = byte(rng.IntN(256))
		}
		priv := ed25519.NewKeyFromSeed(seedBytes)
		ring.pubs[i] = priv.Public().(ed25519.PublicKey)
		signers[i] = &Signer{id: i, key: priv}
	}
	return ring, signers
}

// ErrShortBuffer reports a malformed encoded keyring.
var ErrShortBuffer = errors.New("crypto: short buffer decoding keyring")

// MarshalKeyring encodes the public keys for distribution to clients, for
// example over the wire by cmd/faust-server.
func MarshalKeyring(k *Keyring) []byte {
	buf := make([]byte, 4, 4+len(k.pubs)*ed25519.PublicKeySize)
	binary.BigEndian.PutUint32(buf, uint32(len(k.pubs)))
	for _, p := range k.pubs {
		buf = append(buf, p...)
	}
	return buf
}

// UnmarshalKeyring decodes a keyring produced by MarshalKeyring.
func UnmarshalKeyring(data []byte) (*Keyring, error) {
	if len(data) < 4 {
		return nil, ErrShortBuffer
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n < 0 || len(data) != n*ed25519.PublicKeySize {
		return nil, ErrShortBuffer
	}
	ring := &Keyring{pubs: make([]ed25519.PublicKey, n)}
	for i := 0; i < n; i++ {
		key := make([]byte, ed25519.PublicKeySize)
		copy(key, data[i*ed25519.PublicKeySize:])
		ring.pubs[i] = key
	}
	return ring, nil
}
