// Auditlog runs a tamper-evident audit-log scenario on top of USTOR: a
// compliance team appends findings to registers hosted by an outsourced
// storage provider. The provider then tries two classic attacks — serving
// a corrupted record and rolling a reader back to a stale record — and the
// protocol's client-side checks catch both immediately (Algorithm 1's
// checkData and version checks). Finally, an offline auditor validates the
// collected signed versions.
//
// Run with:
//
//	go run ./examples/auditlog
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/wire"
)

func main() {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 7)

	// Phase 1: an honest provider. Auditors append findings and
	// cross-read each other's logs.
	fmt.Println("— phase 1: honest provider —")
	honest := ustor.NewServer(n)
	network := transport.NewNetwork(n, honest)
	clients := make([]*ustor.Client, n)
	for i := 0; i < n; i++ {
		clients[i] = ustor.NewClient(i, ring, signers[i], network.ClientLink(i))
	}
	var versions []wire.SignedVersion
	for i, c := range clients {
		res, err := c.WriteX(context.Background(), []byte(fmt.Sprintf("finding #%d: access review complete", i)))
		if err != nil {
			log.Fatalf("auditor %d append: %v", i, err)
		}
		versions = append(versions, res.Version)
	}
	for i, c := range clients {
		v, err := c.Read((i + 1) % n)
		if err != nil {
			log.Fatalf("auditor %d cross-read: %v", i, err)
		}
		fmt.Printf("  auditor %d verified peer record: %q\n", i, v)
	}
	report := faustproto.Audit(ring, versions)
	fmt.Printf("  offline audit of %d signed versions: OK=%v\n", len(versions), report.OK)
	network.Stop()

	// Phase 2: the provider corrupts a stored record.
	fmt.Println("— phase 2: provider corrupts a record —")
	var mu sync.Mutex
	corrupt := false
	tamper := &byzantine.ReplyTamperServer{
		Inner: ustor.NewServer(n),
		Tamper: func(from int, r *wire.Reply) *wire.Reply {
			mu.Lock()
			defer mu.Unlock()
			if corrupt && r.IsRead && r.Mem.Value != nil {
				r.Mem.Value[0] ^= 0xFF
			}
			return r
		},
	}
	network2 := transport.NewNetwork(n, tamper)
	defer network2.Stop()
	c0 := ustor.NewClient(0, ring, signers[0], network2.ClientLink(0))
	c1 := ustor.NewClient(1, ring, signers[1], network2.ClientLink(1))
	if err := c0.Write([]byte("finding #0: retention policy violated")); err != nil {
		log.Fatal(err)
	}
	mu.Lock()
	corrupt = true
	mu.Unlock()
	_, err := c1.Read(0)
	var det *ustor.DetectionError
	if !errors.As(err, &det) {
		log.Fatalf("corruption not detected: %v", err)
	}
	fmt.Printf("  auditor 1 detected tampering: %v\n", det)

	// Phase 3: the provider rolls a reader back to a stale record.
	fmt.Println("— phase 3: provider replays a stale record —")
	var replay struct {
		sync.Mutex
		captured []wire.MemEntry
		active   bool
	}
	stale := &byzantine.ReplyTamperServer{
		Inner: ustor.NewServer(n),
		Tamper: func(from int, r *wire.Reply) *wire.Reply {
			replay.Lock()
			defer replay.Unlock()
			if r.IsRead {
				replay.captured = append(replay.captured, r.Mem.Clone())
				if replay.active && len(replay.captured) > 1 {
					r.Mem = replay.captured[0].Clone()
				}
			}
			return r
		},
	}
	network3 := transport.NewNetwork(n, stale)
	defer network3.Stop()
	w := ustor.NewClient(0, ring, signers[0], network3.ClientLink(0))
	rd := ustor.NewClient(1, ring, signers[1], network3.ClientLink(1))
	if err := w.Write([]byte("rev 1")); err != nil {
		log.Fatal(err)
	}
	if _, err := rd.Read(0); err != nil {
		log.Fatal(err)
	}
	if err := w.Write([]byte("rev 2")); err != nil {
		log.Fatal(err)
	}
	replay.Lock()
	replay.active = true
	replay.Unlock()
	_, err = rd.Read(0)
	if !errors.As(err, &det) {
		log.Fatalf("stale replay not detected: %v", err)
	}
	fmt.Printf("  auditor 1 detected rollback: %v\n", det)
	fmt.Println("audit-log guarantees hold: every tampering attempt was caught")
}
