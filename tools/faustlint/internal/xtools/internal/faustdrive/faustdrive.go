// Package faustdrive executes analyzers over loaded packages: the
// execution core shared by the multichecker driver and analysistest.
package faustdrive

import (
	"fmt"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/internal/faustload"
)

// Finding pairs a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer   *analysis.Analyzer
	Diagnostic analysis.Diagnostic
}

// Run applies the analyzers (and, first, their transitive Requires) to
// one package and returns the findings in source order.
func Run(pkg *faustload.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	results := map[*analysis.Analyzer]interface{}{}
	ran := map[*analysis.Analyzer]bool{}

	var exec func(a *analysis.Analyzer) error
	exec = func(a *analysis.Analyzer) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypesSizes,
			ResultOf:   results,
		}
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{Analyzer: a, Diagnostic: d})
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		return findings[i].Diagnostic.Pos < findings[j].Diagnostic.Pos
	})
	return findings, nil
}
