// Faust-server hosts the USTOR storage server over TCP.
//
// The server is the UNTRUSTED party of the protocol: it holds no keys and
// verifies nothing; all guarantees are enforced by the clients. Keys are
// derived deterministically from -seed so that server-less tools (clients)
// can derive the same public keys; use real key distribution in anything
// beyond a demo.
//
// Example:
//
//	faust-server -addr :7440 -n 3
//	faust-client -server localhost:7440 -n 3 -id 0        # in another shell
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"faust/internal/transport"
	"faust/internal/ustor"
)

func main() {
	addr := flag.String("addr", ":7440", "listen address")
	n := flag.Int("n", 3, "number of clients (registers)")
	flag.Parse()

	if *n <= 0 {
		log.Fatalf("faust-server: -n must be positive, got %d", *n)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("faust-server: listen: %v", err)
	}
	core := ustor.NewServer(*n)
	srv := transport.ServeTCP(ln, core)
	fmt.Printf("faust-server: serving %d registers on %s\n", *n, ln.Addr())
	fmt.Println("faust-server: this process is the UNTRUSTED party; clients verify everything")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nfaust-server: shutting down")
	srv.Stop()
}
