// Package analysis is an API-compatible subset of
// golang.org/x/tools/go/analysis, vendored so the faustlint module
// builds in hermetic environments without network access to the module
// proxy. Analyzers written against it are source-compatible with the
// real x/tools packages: swap the replace directive in the faustlint
// go.mod for the upstream module and nothing else changes.
//
// Only the surface faustlint uses is implemented: Analyzer, Pass,
// Diagnostic, Requires/ResultOf plumbing and Reportf. Facts, flags and
// suggested fixes are out of scope.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one analysis function and its options.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the summary printed by the driver's help output.
	Doc string
	// URL points at the analyzer's documentation, if any.
	URL string
	// Run applies the analyzer to a package and returns its result (of
	// type ResultType), which dependent analyzers receive via
	// Pass.ResultOf.
	Run func(*Pass) (interface{}, error)
	// Requires lists analyzers that must run first on the same package.
	Requires []*Analyzer
	// ResultType is the dynamic type of the value returned by Run.
	ResultType reflect.Type
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with the facts of one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes
	ResultOf   map[*Analyzer]interface{}
	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Validate checks the well-formedness of a set of analyzers: unique
// names, Run present, and acyclic Requires graphs.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	const (
		white = iota
		grey
		black
	)
	color := map[*Analyzer]int{}
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch color[a] {
		case grey:
			return fmt.Errorf("analysis: cycle in Requires involving %q", a.Name)
		case black:
			return nil
		}
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q missing Name or Run", a.Name)
		}
		color[a] = grey
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		color[a] = black
		return nil
	}
	for _, a := range analyzers {
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if err := visit(a); err != nil {
			return err
		}
	}
	return nil
}
