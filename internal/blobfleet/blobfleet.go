// Package blobfleet turns the single blob store behind the bulk channel
// into a fleet of cheap, untrusted, individually unreliable backends.
//
// The paper's trust model makes replication uniquely easy here: every
// blob is content-addressed and the reader (internal/kv) verifies the
// hash of everything it fetches, so ANY replica — however untrusted —
// is exactly as good as the primary, and a faulty or byzantine backend
// is detected rather than trusted. The fleet exploits that:
//
//   - Failover composes an ordered list of transport.BlobStore backends.
//     Writes are replicated to the first W alive backends; reads fan
//     through alive backends in order and the first verified answer
//     wins. A blob served by a secondary is written back to the primary
//     (read repair), so a recovered primary converges without an
//     explicit rebuild.
//   - Each backend carries an EMA aliveness score (the wal-g failover
//     design): every operation result feeds the score, a backend whose
//     score sinks below the dead threshold leaves the rotation (with a
//     degraded-mode event in the protocol event log), and a background
//     prober resurrects it when it answers again.
//   - Transient failures are retried per backend with capped exponential
//     backoff plus jitter, under a per-operation deadline.
//   - FaultyBlobs wraps any backend with deterministic, seeded fault
//     injection — errors, added latency, hangs, short reads, bit-flipped
//     payloads — usable from tests, the E21 bench and the faust-server
//     -blob-faults flag.
//
// Because Failover itself knows the address IS the content hash, it
// verifies SHA-256-sized addresses on every read and skips byzantine
// replicas instead of propagating their garbage; the KV layer's own
// end-to-end check remains the last line of defense.
package blobfleet

import "faust/internal/transport"

// Backend is one member of a fleet: a store plus the name it reports
// under in metrics, events and status listings.
type Backend struct {
	Name  string
	Store transport.BlobStore
}
