// Package erroriscmp flags ==/!= comparisons of error values against
// sentinel errors, the bug class PR 7 fixed in store.FileBlobs: an
// error that arrives wrapped (fmt.Errorf("...: %w", fs.ErrNotExist))
// never compares equal to its sentinel, so the comparison silently
// takes the wrong branch — a missing blob masquerading as an I/O
// failure or vice versa. errors.Is unwraps; == does not.
//
// A comparison is flagged when one operand's static type is the error
// interface, the other operand is not the nil literal, and at least one
// operand refers to a package-level variable or constant (the sentinel:
// io.EOF, fs.ErrNotExist, syscall.EINTR, wire.ErrCodec...). Comparisons
// of two local error variables (identity checks) are left alone, as are
// comparisons in switch statements over a non-error tag. Case clauses
// of a switch over an error value are checked the same way.
package erroriscmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"faust/tools/faustlint/internal/directive"
)

// Analyzer is the erroriscmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "erroriscmp",
	Doc:      "flags ==/!= against sentinel errors; wrapped errors need errors.Is",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var _ = directive.Register(Analyzer.Name)

func run(pass *analysis.Pass) (interface{}, error) {
	dp := directive.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op != token.EQL && e.Op != token.NEQ {
				return
			}
			if isNilLiteral(pass, e.X) || isNilLiteral(pass, e.Y) {
				return
			}
			if !isErrorType(pass, e.X) && !isErrorType(pass, e.Y) {
				return
			}
			if sent := sentinelName(pass, e.X); sent != "" {
				report(dp, e.Pos(), e.Op, sent)
			} else if sent := sentinelName(pass, e.Y); sent != "" {
				report(dp, e.Pos(), e.Op, sent)
			}
		case *ast.SwitchStmt:
			if e.Tag == nil || !isErrorType(pass, e.Tag) {
				return
			}
			for _, c := range e.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					if isNilLiteral(pass, expr) {
						continue
					}
					if sent := sentinelName(pass, expr); sent != "" {
						dp.Reportf(expr.Pos(),
							"switch-case comparison of an error against sentinel %s uses ==; wrapped errors never match — use if/else with errors.Is",
							sent)
					}
				}
			}
		}
	})
	return nil, nil
}

func report(dp *directive.Pass, pos token.Pos, op token.Token, sentinel string) {
	verb := "=="
	if op == token.NEQ {
		verb = "!="
	}
	dp.Reportf(pos,
		"error %s %s misses wrapped errors; use errors.Is (the store.FileBlobs bug class from PR 7)",
		verb, sentinel)
}

// isErrorType reports whether expr's static type is the error
// interface itself.
func isErrorType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isNilLiteral reports whether expr is the predeclared nil.
func isNilLiteral(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && tv.IsNil()
}

// sentinelName returns "pkg.Name" when expr refers to a package-level
// variable or constant (a sentinel), "" otherwise.
func sentinelName(pass *analysis.Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return ""
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return ""
	}
	// Package-level: the object's parent scope is its package scope.
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
