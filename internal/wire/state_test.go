package wire

import (
	"bytes"
	"testing"

	"faust/internal/version"
)

func sampleState() *ServerState {
	v := version.New(2)
	v.V[0] = 3
	v.M[0] = bytes.Repeat([]byte{0xaa}, 32)
	return &ServerState{
		N: 2,
		C: 1,
		Mem: []MemEntry{
			{T: 3, Value: []byte("x"), DataSig: []byte("d0")},
			{T: 0}, // initial: bottom value, no signature
		},
		Sver: []SignedVersion{
			{Committer: 0, Ver: v, Sig: []byte("s0")},
			ZeroSignedVersion(2),
		},
		L: []Invocation{
			{Client: 1, Op: OpRead, Reg: 0, SubmitSig: []byte("sig")},
		},
		P: [][]byte{[]byte("p0"), nil},
	}
}

func TestServerStateRoundTrip(t *testing.T) {
	st := sampleState()
	enc := EncodeServerState(st)
	got, err := DecodeServerState(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(EncodeServerState(got), enc) {
		t.Fatal("re-encoding differs from original encoding")
	}
	if got.N != st.N || got.C != st.C {
		t.Fatalf("scalars: got n=%d c=%d", got.N, got.C)
	}
	if got.Mem[1].Value != nil || got.P[1] != nil {
		t.Fatal("nil (bottom) entries did not survive the round trip")
	}
	if !got.Sver[0].Ver.Equal(st.Sver[0].Ver) {
		t.Fatalf("version mismatch: %v != %v", got.Sver[0].Ver, st.Sver[0].Ver)
	}
}

func TestServerStateDecodeRejectsMalformed(t *testing.T) {
	enc := EncodeServerState(sampleState())
	cases := map[string][]byte{
		"empty":     {},
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte(nil), enc...), 0),
		"zero-n":    {0, 0, 0, 0},
		"huge-n":    {0xff, 0xff, 0xff, 0xfe},
		"bad-c":     func() []byte { b := append([]byte(nil), enc...); b[7] = 9; return b }(),
		"negative-c": func() []byte {
			b := append([]byte(nil), enc...)
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeServerState(data); err == nil {
			t.Errorf("%s: malformed state accepted", name)
		}
	}
}
