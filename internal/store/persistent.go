package store

import (
	"context"
	"fmt"
	"sync"

	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// Core is the server state machine the store can persist: the ServerCore
// handlers plus state export/import. ustor.Server implements it; any
// deterministic core with the same message interface can be persisted the
// same way.
type Core interface {
	HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply
	HandleCommit(ctx context.Context, from int, c *wire.Commit)
	ExportState() []byte
	RestoreState(state []byte) error
}

// Options configures a Persistent server.
type Options struct {
	// SnapshotEvery takes a snapshot after that many logged records,
	// bounding both recovery replay time and WAL size. Zero disables
	// automatic snapshots; Snapshot can still be called explicitly.
	SnapshotEvery int
}

// Persistent wraps a Core with write-ahead logging: every SUBMIT and
// COMMIT is appended to the backend before it is applied, so the applied
// state never runs ahead of the log. It implements transport.ServerCore
// and drops in wherever a plain server is served.
//
// Durability points follow the replies. A SUBMIT's record — and, by log
// order, every record buffered before it — is flushed before its REPLY is
// returned, so no client ever observes an operation that recovery cannot
// replay. COMMIT messages have no reply, so their records may stay in the
// group-commit buffer until the next SUBMIT, snapshot or background flush
// picks them up. A crash inside that window loses the commit — the same
// outcome as a crash between receipt and logging, which immediate mode
// has too, just over a wider (flush-interval-bounded) window. Losing a
// commit is fail-safe, not silent: the committing client's next operation
// sees a server version behind its own and reports the server faulty
// (Algorithm 1 line 36) instead of accepting the rollback.
//
// If the backend ever fails to append or flush, the server stops replying
// (nil REPLYs) rather than serve operations it cannot make durable — to
// the clients this is indistinguishable from a crashed server, which is
// the honest signal: wait-freedom is lost, integrity is not.
type Persistent struct {
	mu      sync.Mutex
	core    Core
	backend Backend
	opts    Options

	sinceSnap int
	broken    error // sticky persistence failure

	recoveredSnapshot bool
	recoveredRecords  int
}

// Open recovers the core's state from the backend — newest snapshot, then
// WAL tail replay — and returns the persistent wrapper ready to serve.
func Open(core Core, backend Backend, opts Options) (*Persistent, error) {
	state, tail, err := backend.Load()
	if err != nil {
		return nil, fmt.Errorf("store: loading backend: %w", err)
	}
	if state != nil {
		if err := core.RestoreState(state); err != nil {
			return nil, fmt.Errorf("store: restoring snapshot: %w", err)
		}
	}
	for i, rec := range tail {
		switch m := rec.Msg.(type) {
		case *wire.Submit:
			core.HandleSubmit(context.Background(), rec.From, m)
		case *wire.Commit:
			core.HandleCommit(context.Background(), rec.From, m)
		default:
			return nil, fmt.Errorf("store: WAL record %d: %w", i, ErrBadRecord)
		}
	}
	return &Persistent{
		core:              core,
		backend:           backend,
		opts:              opts,
		recoveredSnapshot: state != nil,
		recoveredRecords:  len(tail),
	}, nil
}

// Recovered reports what Open found: whether a snapshot was restored and
// how many WAL records were replayed on top of it.
func (p *Persistent) Recovered() (fromSnapshot bool, replayed int) {
	return p.recoveredSnapshot, p.recoveredRecords
}

// N reports the wrapped core's client-group size, or -1 when the core does
// not expose one. The TCP transport uses it to reject handshake IDs
// outside [0, N) before they can occupy connection-table entries.
func (p *Persistent) N() int {
	if sized, ok := p.core.(interface{ N() int }); ok {
		return sized.N()
	}
	return -1
}

// HandleSubmit implements transport.ServerCore: log, apply, and flush the
// group-commit batch before the reply escapes — one sync then covers this
// SUBMIT plus every record buffered ahead of it. The flush runs outside
// p.mu: the backend orders and coalesces concurrent flushes itself, so
// submitters arriving while a sync is in flight append behind it and
// share the next one instead of serializing on the wrapper lock.
func (p *Persistent) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	p.mu.Lock()
	if p.broken != nil {
		p.mu.Unlock()
		return nil
	}
	_, ha := trace.Child(ctx, "wal.append")
	err := p.backend.Append(Record{From: from, Msg: s})
	ha.End()
	if err != nil {
		p.broken = err
		p.mu.Unlock()
		return nil
	}
	reply := p.core.HandleSubmit(ctx, from, s)
	p.bumpLocked()
	broken := p.broken != nil // snapshot rotation failed: stay silent
	p.mu.Unlock()
	if broken {
		return nil
	}
	_, hf := trace.Child(ctx, "wal.fsync")
	err = p.backend.Flush()
	hf.End()
	if err != nil {
		p.mu.Lock()
		p.broken = err
		p.mu.Unlock()
		return nil
	}
	return reply
}

// HandleSubmitBuffered is the batch-pipeline variant of HandleSubmit: it
// logs and applies the SUBMIT but leaves the backend flush to a later
// FlushBatch call, so a whole dispatcher batch shares one fsync. The
// caller (the transport's batched dispatcher) MUST withhold the returned
// reply until FlushBatch succeeds — the durability contract is unchanged,
// only the flush is amortized. A nil reply means this op must not be
// acknowledged regardless of the flush outcome.
func (p *Persistent) HandleSubmitBuffered(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return nil
	}
	_, ha := trace.Child(ctx, "wal.append")
	err := p.backend.Append(Record{From: from, Msg: s})
	ha.End()
	if err != nil {
		p.broken = err
		return nil
	}
	reply := p.core.HandleSubmit(ctx, from, s)
	p.bumpLocked()
	if p.broken != nil { // snapshot rotation failed: stay silent
		return nil
	}
	return reply
}

// FlushBatch syncs every record buffered by HandleSubmitBuffered calls
// since the last flush. On failure the wrapper goes sticky-broken exactly
// as a per-op flush failure would, and the caller must suppress every
// reply the failed batch produced.
func (p *Persistent) FlushBatch() error {
	p.mu.Lock()
	if p.broken != nil {
		err := p.broken
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()
	// Flush outside p.mu, mirroring HandleSubmit: the backend coalesces
	// concurrent flushes itself.
	if err := p.backend.Flush(); err != nil {
		p.mu.Lock()
		p.broken = err
		p.mu.Unlock()
		return err
	}
	return nil
}

// HandleCommit implements transport.ServerCore: log, then apply.
func (p *Persistent) HandleCommit(ctx context.Context, from int, c *wire.Commit) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return
	}
	if err := p.backend.Append(Record{From: from, Msg: c}); err != nil {
		p.broken = err
		return
	}
	p.core.HandleCommit(ctx, from, c)
	p.bumpLocked()
}

// bumpLocked counts one logged record and rotates a snapshot when due.
func (p *Persistent) bumpLocked() {
	p.sinceSnap++
	if p.opts.SnapshotEvery > 0 && p.sinceSnap >= p.opts.SnapshotEvery {
		if err := p.snapshotLocked(); err != nil {
			p.broken = err
		}
	}
}

func (p *Persistent) snapshotLocked() error {
	if err := p.backend.WriteSnapshot(p.core.ExportState()); err != nil {
		return err
	}
	p.sinceSnap = 0
	return nil
}

// Snapshot forces a snapshot rotation now, e.g. before a graceful
// shutdown so the next boot replays nothing.
func (p *Persistent) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return p.broken
	}
	return p.snapshotLocked()
}

// ExportState returns the wrapped core's current state. Exposed so tests
// and operators can compare pre-crash and post-recovery state.
func (p *Persistent) ExportState() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.ExportState()
}

// Err returns the sticky persistence failure, if any.
func (p *Persistent) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// Close closes the backend. It does NOT snapshot: closing mid-workload
// must look exactly like a crash so recovery is exercised honestly; call
// Snapshot first for a fast next boot.
func (p *Persistent) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backend.Close()
}
