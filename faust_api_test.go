package faust

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func testService(t *testing.T, n int) *Service {
	t.Helper()
	svc := NewTestService(n, 77,
		WithProbeTimeout(50*time.Millisecond),
		WithPollInterval(10*time.Millisecond))
	t.Cleanup(svc.Close)
	return svc
}

func TestServiceQuickstartFlow(t *testing.T) {
	svc := testService(t, 3)
	alice, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := svc.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Client(2); err != nil {
		t.Fatal(err)
	}

	ts, err := alice.Write([]byte("report-v1"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	val, _, err := bob.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(val) != "report-v1" {
		t.Fatalf("read = %q", val)
	}
	if err := alice.WaitStable(ts, 10*time.Second); err != nil {
		t.Fatalf("stability: %v", err)
	}
	if !alice.IsStable(ts) {
		t.Fatal("IsStable disagrees with WaitStable")
	}
}

func TestGeneratedKeysService(t *testing.T) {
	svc, err := NewService(2, WithoutDummyReads())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c0, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c1, err := svc.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := c1.Read(0)
	if err != nil || string(v) != "x" {
		t.Fatalf("read = %q, %v", v, err)
	}
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(0); err == nil {
		t.Fatal("NewService(0) accepted")
	}
	svc := testService(t, 2)
	if _, err := svc.Client(5); err == nil {
		t.Fatal("out-of-range client accepted")
	}
	if _, err := svc.Client(-1); err == nil {
		t.Fatal("negative client accepted")
	}
	c, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(9); err == nil {
		t.Fatal("out-of-range register accepted")
	}
	if svc.N() != 2 || c.ID() != 0 {
		t.Fatal("accessors wrong")
	}
}

func TestClientMemoized(t *testing.T) {
	svc := testService(t, 2)
	a, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Client(0) returned a different instance")
	}
	if _, err := svc.Client(0, OnFail(func(error) {})); err == nil {
		t.Fatal("options on existing client silently ignored")
	}
}

func TestOnStableCallback(t *testing.T) {
	svc := testService(t, 2)
	var mu sync.Mutex
	var cuts []Cut
	c0, err := svc.Client(0, OnStable(func(w Cut) {
		mu.Lock()
		cuts = append(cuts, w)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Client(1); err != nil {
		t.Fatal(err)
	}
	ts, err := c0.Write([]byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.WaitStable(ts, 10*time.Second); err != nil {
		t.Fatalf("stability: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(cuts) == 0 {
		t.Fatal("no stable notifications")
	}
}

func TestStopThenHalted(t *testing.T) {
	svc := testService(t, 2)
	c, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrHalted) {
		t.Fatalf("write after stop: %v", err)
	}
	if failed, _ := c.Failed(); failed {
		t.Fatal("Stop reported as failure")
	}
}

func TestTimestampsMonotonicAcrossKinds(t *testing.T) {
	svc := testService(t, 2)
	c, err := svc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	var last Timestamp
	for i := 0; i < 6; i++ {
		var ts Timestamp
		var err error
		if i%2 == 0 {
			ts, err = c.Write([]byte{byte('a' + i)})
		} else {
			_, ts, err = c.Read(1)
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("timestamp %d after %d", ts, last)
		}
		last = ts
	}
}
