package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"faust/internal/obs/trace"
)

// Histogram exemplars: every latency histogram can remember the trace
// ID of its most recent over-threshold observation, linking the
// aggregate view ("p999 spiked") to the request-scoped one ("this is
// the trace that did it"). The threshold is the tracing slow threshold
// (trace.Configure); with tracing off or no threshold set, exemplars
// cost one atomic load per observation and store nothing.

// Exemplar is one over-threshold observation with its trace.
type Exemplar struct {
	Trace trace.TraceID
	Value int64 // the observed value, nanoseconds
	At    int64 // unix nanoseconds when observed
}

// exemplarSlots holds one slot per histogram, attached lazily: most
// histograms never see a traced observation, so the slot lives beside
// the histogram rather than inside its cache-line-tuned layout. The
// map is reached only on the rare over-threshold path and on scrapes,
// never on the plain Observe hot path.
type exemplarSlot struct {
	p atomic.Pointer[Exemplar]
}

var exemplarSlots = struct {
	sync.Mutex
	m map[*Histogram]*exemplarSlot
}{m: make(map[*Histogram]*exemplarSlot)}

func exemplarOf(h *Histogram, create bool) *exemplarSlot {
	exemplarSlots.Lock()
	defer exemplarSlots.Unlock()
	s := exemplarSlots.m[h]
	if s == nil && create {
		s = &exemplarSlot{}
		exemplarSlots.m[h] = s
	}
	return s
}

// ObserveExemplar records v and, when v meets the tracing slow
// threshold and id is present, remembers (id, v) as the histogram's
// exemplar.
func (h *Histogram) ObserveExemplar(v int64, id trace.TraceID) {
	h.Observe(v)
	slow := trace.SlowNs()
	if slow <= 0 || v < slow || id.IsZero() {
		return
	}
	e := &Exemplar{Trace: id, Value: v, At: time.Now().UnixNano()}
	exemplarOf(h, true).p.Store(e)
}

// ObserveSinceExemplar is ObserveSince with an exemplar: it records the
// elapsed time since start (no-op for the zero start tracing/metrics
// disabled paths) and attaches id when over threshold.
func (h *Histogram) ObserveSinceExemplar(start time.Time, id trace.TraceID) {
	if start.IsZero() {
		return
	}
	h.ObserveExemplar(int64(time.Since(start)), id)
}

// ObserveExemplarAlways records v and, when id is present, remembers
// (id, v) as the histogram's exemplar regardless of the tracing slow
// threshold. The threshold is a latency notion; histograms of other
// quantities (dispatch batch sizes, queue depths) decide for themselves
// which observations deserve a trace link and pass a zero id for the
// rest.
func (h *Histogram) ObserveExemplarAlways(v int64, id trace.TraceID) {
	h.Observe(v)
	if id.IsZero() {
		return
	}
	e := &Exemplar{Trace: id, Value: v, At: time.Now().UnixNano()}
	exemplarOf(h, true).p.Store(e)
}

// ExemplarOf returns the histogram's most recent over-threshold
// exemplar, nil when none was recorded.
func ExemplarOf(h *Histogram) *Exemplar {
	s := exemplarOf(h, false)
	if s == nil {
		return nil
	}
	return s.p.Load()
}
