package crypto

import (
	"sync"
	"testing"
)

// buildJobs signs one payload per client and returns matching jobs, with
// forged[i] jobs carrying a signature from the wrong signer.
func buildJobs(t *testing.T, ring *Keyring, signers []*Signer, count int, forged map[int]bool) []VerifyJob {
	t.Helper()
	jobs := make([]VerifyJob, count)
	for i := range jobs {
		signer := signers[i%len(signers)]
		payload := []byte{byte(i), byte(i >> 8), 0xAB}
		sig := signer.Sign(DomainSubmit, payload)
		if forged[i] {
			sig = signers[(i+1)%len(signers)].Sign(DomainSubmit, payload)
		}
		jobs[i] = VerifyJob{Ring: ring, Signer: signer.ID(), Domain: DomainSubmit, Sig: sig, Payload: payload}
	}
	return jobs
}

func TestVerifyBatchMatchesVerify(t *testing.T) {
	ring, signers := NewTestKeyring(4, 7)
	forged := map[int]bool{3: true, 10: true}
	for _, workers := range []int{0, 1, 2, 8} {
		SetVerifyWorkers(workers)
		for _, count := range []int{1, 2, 5, 17, 64} {
			jobs := buildJobs(t, ring, signers, count, forged)
			VerifyBatch(jobs)
			for i, j := range jobs {
				want := ring.Verify(j.Signer, j.Sig, j.Domain, j.Payload)
				if j.OK != want {
					t.Fatalf("workers=%d count=%d job %d: VerifyBatch=%v, Verify=%v", workers, count, i, j.OK, want)
				}
				if forged[i] && j.OK {
					t.Fatalf("workers=%d count=%d job %d: forged signature accepted", workers, count, i)
				}
			}
		}
	}
	SetVerifyWorkers(0)
}

func TestVerifyBatchEdgeJobs(t *testing.T) {
	SetVerifyWorkers(4)
	defer SetVerifyWorkers(0)
	ring, signers := NewTestKeyring(2, 9)
	payload := []byte("edge")
	sig := signers[0].Sign(DomainSubmit, payload)
	jobs := []VerifyJob{
		{Ring: ring, Signer: 0, Domain: DomainSubmit, Sig: sig, Payload: payload},
		{Ring: nil, Signer: 0, Domain: DomainSubmit, Sig: sig, Payload: payload},        // nil ring
		{Ring: ring, Signer: 5, Domain: DomainSubmit, Sig: sig, Payload: payload},       // out of range
		{Ring: ring, Signer: 0, Domain: DomainCommit, Sig: sig, Payload: payload},       // wrong domain
		{Ring: ring, Signer: 0, Domain: DomainSubmit, Sig: sig[:10], Payload: payload},  // malformed sig
		{Ring: ring, Signer: 1, Domain: DomainSubmit, Sig: sig, Payload: payload},       // wrong signer
		{Ring: ring, Signer: 0, Domain: DomainSubmit, Sig: sig, Payload: []byte("eel")}, // wrong payload
	}
	VerifyBatch(jobs)
	want := []bool{true, false, false, false, false, false, false}
	for i := range jobs {
		if jobs[i].OK != want[i] {
			t.Fatalf("job %d: OK=%v, want %v", i, jobs[i].OK, want[i])
		}
	}
}

// TestVerifyBatchConcurrent exercises the shared pool from many
// dispatchers at once; run with -race.
func TestVerifyBatchConcurrent(t *testing.T) {
	SetVerifyWorkers(4)
	defer SetVerifyWorkers(0)
	ring, signers := NewTestKeyring(3, 11)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			forged := map[int]bool{g % 5: true}
			for round := 0; round < 20; round++ {
				jobs := buildJobs(t, ring, signers, 9, forged)
				VerifyBatch(jobs)
				for i, j := range jobs {
					if j.OK == forged[i] {
						t.Errorf("goroutine %d round %d job %d: OK=%v with forged=%v", g, round, i, j.OK, forged[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
